// Workload generation for the precision and throughput experiments (§7.3).
//
// "We randomly select non-faulty Tempest tests proportional to their
// distribution in the test suite, and execute them concurrently with a
// specified number of faulty test cases.  These faulty operations included
// erroneous APIs only from the Compute and Network category."
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "stack/faults.h"
#include "stack/workflow.h"
#include "tempest/catalog.h"
#include "util/time.h"

namespace gretel::tempest {

struct WorkloadSpec {
  int concurrent_tests = 100;  // non-faulty operations
  int faults = 1;              // faulty operations (Compute/Network only)
  // Launch times are uniform over this window, giving heavy interleaving.
  util::SimDuration window = util::SimDuration::seconds(60);
  std::uint64_t seed = 1;
  // Fig. 8a: when set, all faulty launches use this one operation index.
  std::optional<std::size_t> identical_faulty_op;
};

struct GeneratedWorkload {
  std::vector<stack::Launch> launches;
  // Positions of the faulty launches within `launches`.  A fresh
  // WorkflowExecutor assigns instance id i+1 to launches[i].
  std::vector<std::size_t> faulty_launch_idx;
};

GeneratedWorkload make_parallel_workload(const TempestCatalog& catalog,
                                         const WorkloadSpec& spec);

// Isolated repeated executions of one operation, spaced so runs never
// overlap — the §5 controlled setting used to learn fingerprints.
std::vector<stack::Launch> make_isolated_runs(
    const TempestCatalog& catalog, std::size_t op_index, int repeats,
    util::SimDuration gap = util::SimDuration::seconds(30));

}  // namespace gretel::tempest
