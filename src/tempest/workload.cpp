#include "tempest/workload.h"

#include <array>

#include "util/rng.h"

namespace gretel::tempest {

using stack::Category;
using stack::Launch;
using util::Rng;
using util::SimDuration;
using util::SimTime;

GeneratedWorkload make_parallel_workload(const TempestCatalog& catalog,
                                         const WorkloadSpec& spec) {
  Rng rng(spec.seed);
  GeneratedWorkload out;

  // Category weights proportional to suite distribution.
  std::array<double, stack::kCategories> weights{};
  for (std::size_t c = 0; c < stack::kCategories; ++c) {
    weights[c] =
        static_cast<double>(catalog.category_ops(static_cast<Category>(c))
                                .size());
  }

  auto random_start = [&] {
    return SimTime::epoch() +
           SimDuration::nanos(static_cast<std::int64_t>(
               rng.next_double() *
               static_cast<double>(spec.window.count())));
  };

  for (int i = 0; i < spec.concurrent_tests; ++i) {
    const auto cat_idx = rng.pick_weighted(weights);
    const auto& ops = catalog.category_ops(static_cast<Category>(cat_idx));
    const auto op_idx = ops[rng.next_below(ops.size())];
    out.launches.push_back(
        {&catalog.operation(op_idx), random_start(), std::nullopt});
  }

  // Faulty operations: Compute and Network only (§7.3), failing at a
  // state-change step so the abort relays a REST error to the dashboard.
  static constexpr std::array<std::uint16_t, 4> kStatuses{500, 409, 404, 503};
  for (int f = 0; f < spec.faults; ++f) {
    std::size_t op_idx;
    if (spec.identical_faulty_op) {
      op_idx = *spec.identical_faulty_op;
    } else {
      const auto cat = rng.chance(0.67) ? Category::Compute
                                        : Category::Network;
      const auto& ops = catalog.category_ops(cat);
      op_idx = ops[rng.next_below(ops.size())];
    }
    const auto& op = catalog.operation(op_idx);

    // Pick a state-change step beyond the entry to fail at.
    std::vector<std::size_t> candidates;
    for (std::size_t s = 0; s < op.steps.size(); ++s) {
      if (op.steps[s].transient) continue;
      if (catalog.apis().get(op.steps[s].api).state_change())
        candidates.push_back(s);
    }
    const std::size_t fail_step =
        candidates.empty() ? 0
                           : candidates[rng.next_below(candidates.size())];

    stack::OperationalFault fault;
    fault.fail_step = fail_step;
    fault.status = kStatuses[rng.next_below(kStatuses.size())];
    fault.error_text = "Simulated fault in " + op.name;

    out.faulty_launch_idx.push_back(out.launches.size());
    out.launches.push_back({&op, random_start(), fault});
  }

  return out;
}

std::vector<Launch> make_isolated_runs(const TempestCatalog& catalog,
                                       std::size_t op_index, int repeats,
                                       SimDuration gap) {
  std::vector<Launch> out;
  out.reserve(static_cast<std::size_t>(repeats));
  SimTime t = SimTime::epoch();
  for (int r = 0; r < repeats; ++r) {
    out.push_back({&catalog.operation(op_index), t, std::nullopt});
    t += gap;
  }
  return out;
}

}  // namespace gretel::tempest
