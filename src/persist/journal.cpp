#include "persist/journal.h"

#include <algorithm>
#include <filesystem>

#include "persist/crash_hook.h"
#include "util/atomic_file.h"
#include "util/binio.h"
#include "util/crc32.h"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace gretel::persist {

namespace {

constexpr std::string_view kMagic = "GRTWAL01";
constexpr std::string_view kPrefix = "wal-";
constexpr std::string_view kSuffix = ".grtwal";
constexpr std::size_t kHeaderSize = 8 + 8;  // magic + base_seq

std::string segment_path(const std::string& dir, std::uint64_t base_seq) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%020llu",
                static_cast<unsigned long long>(base_seq));
  return dir + "/" + std::string(kPrefix) + buf + std::string(kSuffix);
}

// Base seqs of every segment in `dir`, ascending.
std::vector<std::uint64_t> list_segments(const std::string& dir) {
  std::vector<std::uint64_t> bases;
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) return bases;
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    if (name.size() <= kPrefix.size() + kSuffix.size() ||
        name.compare(0, kPrefix.size(), kPrefix) != 0 ||
        name.compare(name.size() - kSuffix.size(), kSuffix.size(),
                     kSuffix) != 0) {
      continue;
    }
    const std::string digits = name.substr(
        kPrefix.size(), name.size() - kPrefix.size() - kSuffix.size());
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    bases.push_back(std::strtoull(digits.c_str(), nullptr, 10));
  }
  std::sort(bases.begin(), bases.end());
  return bases;
}

std::string encode_body(std::uint64_t seq, std::uint64_t tick,
                        std::int64_t emitted_ns, double delay_ms,
                        std::string_view payload) {
  std::string body;
  util::put_u64(body, seq);
  util::put_u64(body, tick);
  util::put_i64(body, emitted_ns);
  util::put_f64(body, delay_ms);
  body += payload;
  return body;
}

bool decode_body(std::string_view body, JournalRecord& rec) {
  if (!util::get_u64(body, rec.seq) || !util::get_u64(body, rec.tick) ||
      !util::get_i64(body, rec.emitted_at_ns) ||
      !util::get_f64(body, rec.report_delay_ms)) {
    return false;
  }
  rec.payload.assign(body);
  return true;
}

struct SegmentScan {
  std::uint64_t base_seq = 0;
  std::vector<JournalRecord> records;
  // Byte offset of the first torn/invalid record (== file size when the
  // whole segment is intact) — the truncation point for recovery.
  std::size_t intact_bytes = 0;
  bool header_ok = false;
};

// Walks a segment, CRC-checking every record, stopping (not failing) at
// the first torn one: everything after a torn record is untrusted.
SegmentScan scan_segment(const std::string& path,
                         std::uint64_t expected_base) {
  SegmentScan scan;
  const auto data = util::read_file(path);
  if (!data) return scan;
  std::string_view in = *data;
  std::string_view magic = in.substr(0, std::min(in.size(), kMagic.size()));
  std::uint64_t base = 0;
  if (magic != kMagic) return scan;
  in.remove_prefix(kMagic.size());
  if (!util::get_u64(in, base) || base != expected_base) return scan;
  scan.header_ok = true;
  scan.base_seq = base;
  scan.intact_bytes = kHeaderSize;

  std::uint64_t expect_seq = base;
  while (!in.empty()) {
    std::string_view cursor = in;
    std::uint32_t len = 0;
    std::uint32_t crc = 0;
    if (!util::get_u32(cursor, len) || !util::get_u32(cursor, crc) ||
        cursor.size() < len) {
      break;  // torn tail
    }
    const std::string_view body = cursor.substr(0, len);
    if (util::crc32(body) != crc) break;  // torn or corrupt
    JournalRecord rec;
    if (!decode_body(body, rec) || rec.seq != expect_seq) break;
    scan.records.push_back(std::move(rec));
    ++expect_seq;
    const std::size_t consumed = 4 + 4 + len;
    scan.intact_bytes += consumed;
    in.remove_prefix(consumed);
  }
  return scan;
}

}  // namespace

std::optional<ReportJournal> ReportJournal::open(
    const std::string& dir, std::size_t segment_records,
    std::size_t* truncated_records) {
  if (truncated_records) *truncated_records = 0;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);

  ReportJournal j;
  j.dir_ = dir;
  j.segment_records_ = std::max<std::size_t>(1, segment_records);

  const auto bases = list_segments(dir);
  if (bases.empty()) {
    // Fresh journal: the first append creates wal-0.
    return j;
  }

  const std::uint64_t base = bases.back();
  const std::string path = segment_path(dir, base);
  const auto scan = scan_segment(path, base);
  if (!scan.header_ok) {
    // The newest segment's header never made it to disk (crash between
    // rotation's file creation and header flush).  The file carries no
    // records; drop it and resume from the previous segment's end.
    std::filesystem::remove(path, ec);
    if (bases.size() == 1) return j;
    const std::uint64_t prev = bases[bases.size() - 2];
    const auto prev_scan = scan_segment(segment_path(dir, prev), prev);
    if (!prev_scan.header_ok) return std::nullopt;
    std::filesystem::resize_file(segment_path(dir, prev),
                                 prev_scan.intact_bytes, ec);
    if (ec) return std::nullopt;
    j.segment_base_ = prev;
    j.next_seq_ = prev + prev_scan.records.size();
  } else {
    // Torn-tail truncation: cut the segment back to its last intact
    // record.  This is the crash-mid-append artifact; at most one record
    // (never fsync-acknowledged) is dropped per crash.
    const auto size = std::filesystem::file_size(path, ec);
    if (!ec && size > scan.intact_bytes) {
      if (truncated_records) *truncated_records = 1;
      std::filesystem::resize_file(path, scan.intact_bytes, ec);
      if (ec) return std::nullopt;
    }
    j.segment_base_ = base;
    j.next_seq_ = base + scan.records.size();
  }

  // Reopen the tail segment for appending.
  std::FILE* f = std::fopen(segment_path(dir, j.segment_base_).c_str(), "ab");
  if (!f) {
    // No tail segment exists (fresh dir after header-less removal); the
    // next append creates one.
    return j;
  }
  j.file_ = f;
  return j;
}

ReportJournal::ReportJournal(ReportJournal&& other) noexcept
    : dir_(std::move(other.dir_)),
      segment_records_(other.segment_records_),
      file_(other.file_),
      segment_base_(other.segment_base_),
      next_seq_(other.next_seq_) {
  other.file_ = nullptr;
}

ReportJournal& ReportJournal::operator=(ReportJournal&& other) noexcept {
  if (this != &other) {
    if (file_) std::fclose(file_);
    dir_ = std::move(other.dir_);
    segment_records_ = other.segment_records_;
    file_ = other.file_;
    segment_base_ = other.segment_base_;
    next_seq_ = other.next_seq_;
    other.file_ = nullptr;
  }
  return *this;
}

ReportJournal::~ReportJournal() {
  if (file_) std::fclose(file_);
}

bool ReportJournal::open_segment(std::uint64_t base_seq) {
  if (file_) {
    std::fclose(file_);
    file_ = nullptr;
  }
  const std::string path = segment_path(dir_, base_seq);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) return false;
  std::string header;
  header += kMagic;
  util::put_u64(header, base_seq);
  if (std::fwrite(header.data(), 1, header.size(), f) != header.size() ||
      std::fflush(f) != 0) {
    std::fclose(f);
    return false;
  }
#if defined(__unix__) || defined(__APPLE__)
  fsync(fileno(f));
#endif
  file_ = f;
  segment_base_ = base_seq;
  return true;
}

std::uint64_t ReportJournal::append(std::uint64_t tick,
                                    util::SimTime emitted_at,
                                    double report_delay_ms,
                                    std::string_view payload) {
  // Rotate at the segment boundary (or lazily create the first segment).
  if (!file_ || next_seq_ - segment_base_ >= segment_records_) {
    if (!open_segment(next_seq_)) return next_seq_;
  }

  const std::uint64_t seq = next_seq_;
  const std::string body =
      encode_body(seq, tick, emitted_at.nanos(), report_delay_ms, payload);
  std::string record;
  util::put_u32(record, static_cast<std::uint32_t>(body.size()));
  util::put_u32(record, util::crc32(body));
  record += body;

  if (crash_requested("journal.append")) {
    // A real crash mid-append leaves a prefix of the record on disk; the
    // CRC on open detects it and truncation drops it.  The report was
    // never acknowledged, so nothing durable is lost.
    std::fwrite(record.data(), 1, record.size() / 2, file_);
    std::fflush(file_);
#if defined(__unix__) || defined(__APPLE__)
    fsync(fileno(file_));
#endif
    throw SimulatedCrash{};
  }

  if (std::fwrite(record.data(), 1, record.size(), file_) != record.size() ||
      std::fflush(file_) != 0) {
    return seq;  // I/O failure: seq not advanced past a non-durable record
  }
#if defined(__unix__) || defined(__APPLE__)
  fsync(fileno(file_));
#endif
  ++next_seq_;
  return seq;
}

void ReportJournal::purge_below(std::uint64_t before_seq) {
  const auto bases = list_segments(dir_);
  std::error_code ec;
  for (std::size_t i = 0; i + 1 < bases.size(); ++i) {
    // Segment i holds seqs [bases[i], bases[i+1]); fully covered when the
    // next segment starts at or below the checkpoint mark.  The active
    // (last) segment is never purged.
    if (bases[i + 1] <= before_seq && bases[i] != segment_base_) {
      std::filesystem::remove(segment_path(dir_, bases[i]), ec);
    }
  }
}

std::vector<JournalRecord> ReportJournal::read_from(const std::string& dir,
                                                    std::uint64_t from_seq) {
  std::vector<JournalRecord> out;
  for (std::uint64_t base : list_segments(dir)) {
    auto scan = scan_segment(segment_path(dir, base), base);
    for (auto& rec : scan.records) {
      if (rec.seq >= from_seq) out.push_back(std::move(rec));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const JournalRecord& a, const JournalRecord& b) {
              return a.seq < b.seq;
            });
  return out;
}

}  // namespace gretel::persist
