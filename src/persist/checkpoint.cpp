#include "persist/checkpoint.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <memory>

#include "persist/crash_hook.h"
#include "util/atomic_file.h"
#include "util/binio.h"
#include "util/crc32.h"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace gretel::persist {

namespace {

constexpr std::string_view kMagic = "GRTCKP01";
constexpr std::string_view kPrefix = "checkpoint-";
constexpr std::string_view kSuffix = ".grtckp";

void put_section(std::string& out, std::string_view name,
                 std::string_view body) {
  util::put_bytes(out, name);
  util::put_u32(out, static_cast<std::uint32_t>(body.size()));
  util::put_u32(out, util::crc32(body));
  out += body;
}

bool pop_section(std::string_view& in, std::string_view& name,
                 std::string_view& body) {
  std::uint32_t len = 0;
  std::uint32_t crc = 0;
  if (!util::get_bytes(in, name) || !util::get_u32(in, len) ||
      !util::get_u32(in, crc) || in.size() < len) {
    return false;
  }
  body = in.substr(0, len);
  in.remove_prefix(len);
  return util::crc32(body) == crc;
}

std::string encode_meta(const CheckpointMeta& m) {
  std::string out;
  util::put_u64(out, m.checkpoint_seq);
  util::put_u64(out, m.tick);
  util::put_i64(out, m.watermark_ns);
  util::put_u64(out, m.journal_next_seq);
  util::put_u64(out, m.offered);
  util::put_u64(out, m.ingested);
  util::put_u64(out, m.shed);
  util::put_u64(out, m.shed_episodes);
  util::put_u64(out, m.ticks);
  util::put_u64(out, m.reports);
  util::put_u64(out, m.reports_evicted);
  util::put_u64(out, m.metrics);
  util::put_u64(out, m.db_catalog_hash);
  util::put_u32(out, m.db_content_crc);
  return out;
}

bool decode_meta(std::string_view in, CheckpointMeta& m) {
  return util::get_u64(in, m.checkpoint_seq) && util::get_u64(in, m.tick) &&
         util::get_i64(in, m.watermark_ns) &&
         util::get_u64(in, m.journal_next_seq) &&
         util::get_u64(in, m.offered) && util::get_u64(in, m.ingested) &&
         util::get_u64(in, m.shed) && util::get_u64(in, m.shed_episodes) &&
         util::get_u64(in, m.ticks) && util::get_u64(in, m.reports) &&
         util::get_u64(in, m.reports_evicted) &&
         util::get_u64(in, m.metrics) &&
         util::get_u64(in, m.db_catalog_hash) &&
         util::get_u32(in, m.db_content_crc) && in.empty();
}

}  // namespace

std::string encode_checkpoint(const Checkpoint& ckp) {
  std::string out;
  out += kMagic;
  util::put_u32(out, 2);  // sections
  put_section(out, "meta", encode_meta(ckp.meta));
  put_section(out, "analyzer", ckp.analyzer_state);
  return out;
}

std::optional<Checkpoint> decode_checkpoint(std::string_view data) {
  if (!data.starts_with(kMagic)) return std::nullopt;
  data.remove_prefix(kMagic.size());
  std::uint32_t count = 0;
  if (!util::get_u32(data, count) || count > 64) return std::nullopt;

  Checkpoint ckp;
  bool have_meta = false;
  bool have_analyzer = false;
  for (std::uint32_t i = 0; i < count; ++i) {
    std::string_view name;
    std::string_view body;
    if (!pop_section(data, name, body)) return std::nullopt;
    if (name == "meta") {
      if (!decode_meta(body, ckp.meta)) return std::nullopt;
      have_meta = true;
    } else if (name == "analyzer") {
      ckp.analyzer_state.assign(body);
      have_analyzer = true;
    }
    // Unknown sections: CRC-checked, then skipped (forward compatibility).
  }
  if (!data.empty() || !have_meta || !have_analyzer) return std::nullopt;
  return ckp;
}

std::string checkpoint_path(const std::string& dir, std::uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%020llu",
                static_cast<unsigned long long>(seq));
  return dir + "/" + std::string(kPrefix) + buf + std::string(kSuffix);
}

bool write_checkpoint(const std::string& dir, const Checkpoint& ckp,
                      std::size_t keep) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::string data = encode_checkpoint(ckp);
  const std::string path = checkpoint_path(dir, ckp.meta.checkpoint_seq);

  // Fail points: a crash mid-write leaves a truncated .tmp (the loader
  // never reads temp files, and the atomic-rename idiom means the
  // destination is untouched); pre-rename leaves a complete orphaned .tmp;
  // post-rename leaves the checkpoint durable but old files unpruned.
  if (crash_requested("checkpoint.mid_write")) {
    const std::string tmp = path + ".tmp";
    if (std::FILE* f = std::fopen(tmp.c_str(), "wb")) {
      std::fwrite(data.data(), 1, data.size() / 2, f);
      std::fclose(f);
    }
    throw SimulatedCrash{};
  }
  if (crash_requested("checkpoint.pre_rename")) {
    const std::string tmp = path + ".tmp";
    if (std::FILE* f = std::fopen(tmp.c_str(), "wb")) {
      std::fwrite(data.data(), 1, data.size(), f);
      std::fclose(f);
    }
    throw SimulatedCrash{};
  }
  if (!util::write_file_atomic(path, data, /*sync_dir=*/true)) return false;
  if (crash_requested("checkpoint.post_rename")) throw SimulatedCrash{};

  // Prune all but the newest `keep` (never the one just written).
  auto seqs = list_checkpoints(dir);
  for (std::size_t i = keep; i < seqs.size(); ++i) {
    std::filesystem::remove(checkpoint_path(dir, seqs[i]), ec);
  }
  return true;
}

std::vector<std::uint64_t> list_checkpoints(const std::string& dir) {
  std::vector<std::uint64_t> seqs;
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) return seqs;
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    if (name.size() <= kPrefix.size() + kSuffix.size() ||
        name.compare(0, kPrefix.size(), kPrefix) != 0 ||
        name.compare(name.size() - kSuffix.size(), kSuffix.size(),
                     kSuffix) != 0) {
      continue;
    }
    const std::string digits = name.substr(
        kPrefix.size(), name.size() - kPrefix.size() - kSuffix.size());
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    seqs.push_back(std::strtoull(digits.c_str(), nullptr, 10));
  }
  std::sort(seqs.rbegin(), seqs.rend());
  return seqs;
}

std::optional<Checkpoint> load_newest_checkpoint(
    const std::string& dir, std::size_t* corrupt_skipped) {
  if (corrupt_skipped) *corrupt_skipped = 0;
  for (std::uint64_t seq : list_checkpoints(dir)) {
    const auto data = util::read_file(checkpoint_path(dir, seq));
    if (data) {
      if (auto ckp = decode_checkpoint(*data)) return ckp;
    }
    if (corrupt_skipped) ++*corrupt_skipped;
  }
  return std::nullopt;
}

}  // namespace gretel::persist
