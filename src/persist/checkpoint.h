// GRTCKP01: the versioned, CRC-checked checkpoint format.
//
// A checkpoint is one file, written atomically (tmp+fsync+rename, like
// save_fingerprint_db), holding everything the stream analyzer needs to
// resume after a kill: the learned analyzer state (detector baselines, P²
// sketches, pending pairings, orphan clocks — via Analyzer::save_state),
// the stream flow-ledger counters, the fingerprint-DB identity it was
// running against, and the journal high-water mark that ties the
// checkpoint to the report journal.
//
// Layout (integers big-endian, util/binio.h):
//   magic    "GRTCKP01"
//   count    u32                      sections
//   section: name  (u32 len + bytes)
//            body  u32 len, u32 crc32, bytes
//
// Sections (unknown names are skipped on read, so the format can grow):
//   "meta"      ledger counters, tick/watermark, journal mark, db identity
//   "analyzer"  Analyzer::save_state blob
//
// Every section carries its own CRC32 (util/crc32.h): a torn write or a
// flipped bit fails the checksum and the loader falls back to the next
// newest file instead of resuming from garbage.  Files are named
// checkpoint-<seq>.grtckp with a monotonically increasing u64 seq.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace gretel::persist {

struct CheckpointMeta {
  std::uint64_t checkpoint_seq = 0;  // monotone per analyzer lifetime
  std::uint64_t tick = 0;            // stream tick the snapshot was taken at
  std::int64_t watermark_ns = 0;     // stream watermark (sim time)
  // First journal sequence number NOT covered by this checkpoint: every
  // journaled report with seq < journal_next_seq was emitted before the
  // snapshot.  Recovery replays the journal tail from here.
  std::uint64_t journal_next_seq = 0;
  // Flow-ledger counters (stream::StreamCounters).  The snapshot is taken
  // at a tick boundary right after the ring drained, so the ledger
  // reconciles inside the checkpoint: offered == ingested + shed.
  std::uint64_t offered = 0;
  std::uint64_t ingested = 0;
  std::uint64_t shed = 0;
  std::uint64_t shed_episodes = 0;
  std::uint64_t ticks = 0;
  std::uint64_t reports = 0;
  std::uint64_t reports_evicted = 0;
  std::uint64_t metrics = 0;
  // Identity of the fingerprint DB the analyzer was running against:
  // catalog hash + CRC32 of the encoded DB.  restore() refuses to graft
  // learned state onto a different DB (a hot swap between checkpoint and
  // crash falls back to a cold start of the learned state).
  std::uint64_t db_catalog_hash = 0;
  std::uint32_t db_content_crc = 0;
};

struct Checkpoint {
  CheckpointMeta meta;
  std::string analyzer_state;  // core::Analyzer::save_state blob
};

std::string encode_checkpoint(const Checkpoint& ckp);
std::optional<Checkpoint> decode_checkpoint(std::string_view data);

// File name for a given checkpoint seq (under `dir`).
std::string checkpoint_path(const std::string& dir, std::uint64_t seq);

// Atomically writes checkpoint-<seq>.grtckp into `dir` (created if
// missing) and prunes all but the newest `keep` checkpoint files.
// Honors the crash-injection fail points (crash_hook.h); a simulated
// crash propagates as SimulatedCrash after leaving the partial artifact.
bool write_checkpoint(const std::string& dir, const Checkpoint& ckp,
                      std::size_t keep);

// Checkpoint seqs present in `dir`, newest first (file names only; the
// contents may still be corrupt).
std::vector<std::uint64_t> list_checkpoints(const std::string& dir);

// Loads the newest checkpoint that decodes cleanly, falling back across
// corrupt files.  `corrupt_skipped`, when non-null, receives the number of
// newer files that failed validation (recovery reports it).
std::optional<Checkpoint> load_newest_checkpoint(const std::string& dir,
                                                 std::size_t* corrupt_skipped);

}  // namespace gretel::persist
