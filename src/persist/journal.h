// GRTWAL01: the append-only report journal.
//
// Durability contract: a StreamReport does not count as emitted until its
// journal record is fsync'd — append() returns only after the bytes are on
// the device, and only then does the stream analyzer deliver the report to
// its sink.  A crash at any instruction therefore loses zero
// sink-delivered reports; recovery states exactly which sequence numbers
// are on disk.
//
// Segment layout: wal-<base_seq>.grtwal files under the persistence dir.
//   header  "GRTWAL01" + u64 base_seq       (seq of the first record)
//   record  u32 len, u32 crc32(body), body
//   body    u64 seq, u64 tick, i64 emitted_at_ns, f64 report_delay_ms,
//           payload bytes (diagnosis JSON; len covers the whole body)
//
// Records are strictly sequential (seq = base_seq + index within the
// file).  On open the tail segment is scanned and a torn final record —
// the artifact of a crash mid-append — is truncated away; everything
// before it is intact by CRC.  Rotation starts a new segment every
// `segment_records` records; segments fully covered by a checkpoint are
// purged at checkpoint time (recovery only replays the tail).
#pragma once

#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "util/time.h"

namespace gretel::persist {

struct JournalRecord {
  std::uint64_t seq = 0;
  std::uint64_t tick = 0;
  std::int64_t emitted_at_ns = 0;
  double report_delay_ms = 0.0;
  std::string payload;  // diagnosis JSON (gretel/json_export.h)
};

class ReportJournal {
 public:
  // Opens the journal in `dir` (created if missing) for appending: scans
  // the newest segment, truncates a torn tail, and positions next_seq
  // after the last intact record.  `truncated_records`, when non-null,
  // receives how many torn tail records were dropped (0 or 1 for a single
  // crash).  Returns nullopt only on I/O errors that make appends
  // impossible (unwritable dir).
  static std::optional<ReportJournal> open(const std::string& dir,
                                           std::size_t segment_records,
                                           std::size_t* truncated_records);

  ReportJournal(ReportJournal&& other) noexcept;
  ReportJournal& operator=(ReportJournal&& other) noexcept;
  ReportJournal(const ReportJournal&) = delete;
  ReportJournal& operator=(const ReportJournal&) = delete;
  ~ReportJournal();

  // Appends one record and fsyncs it; returns the assigned seq.  The
  // record is durable when this returns.  Honors the "journal.append"
  // crash fail point (leaves a torn record, throws SimulatedCrash).
  std::uint64_t append(std::uint64_t tick, util::SimTime emitted_at,
                       double report_delay_ms, std::string_view payload);

  // Next sequence number append() will assign.
  std::uint64_t next_seq() const { return next_seq_; }

  // Drops whole segments whose every record has seq < before_seq (i.e.
  // fully covered by a checkpoint).  The active segment is never dropped.
  void purge_below(std::uint64_t before_seq);

  // Every intact record with seq >= from_seq across all segments in `dir`,
  // in sequence order.  Torn tails are skipped, not errors — this is the
  // recovery read path and runs against post-crash state.
  static std::vector<JournalRecord> read_from(const std::string& dir,
                                              std::uint64_t from_seq);

 private:
  ReportJournal() = default;
  bool open_segment(std::uint64_t base_seq);

  std::string dir_;
  std::size_t segment_records_ = 4096;
  std::FILE* file_ = nullptr;
  std::uint64_t segment_base_ = 0;  // seq of the current segment's first rec
  std::uint64_t next_seq_ = 0;
};

}  // namespace gretel::persist
