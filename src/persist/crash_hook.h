// Deterministic crash injection for the durability layer.
//
// The kill-point recovery campaigns (src/campaign/recovery_campaign.cpp)
// must crash the process "at any instruction" — but an actual kill() per
// round would make the campaign a fork bomb and the failure non-portable.
// Instead the persist layer threads named fail points through its write
// paths: when the installed hook returns true for a point, the writer
// leaves exactly the partial on-disk artifact a real crash there would
// leave (a torn journal record, a half-written checkpoint temp file, ...)
// and throws SimulatedCrash.  The campaign catches the throw, constructs a
// fresh analyzer from the surviving files, and asserts the recovery
// invariant — the same code path a real restart takes.
//
// Points (see checkpoint.cpp / journal.cpp for the exact artifact each
// leaves behind):
//   "journal.append"          torn record at the segment tail
//   "checkpoint.mid_write"    truncated checkpoint temp file
//   "checkpoint.pre_rename"   complete temp file, rename never happened
//   "checkpoint.post_rename"  checkpoint durable, pruning never happened
//
// The hook is process-global and intended for single-threaded tests; the
// default (no hook) makes every fail point free and the durability paths
// crash-less.
#pragma once

#include <exception>
#include <functional>
#include <string_view>
#include <utility>

namespace gretel::persist {

struct SimulatedCrash : std::exception {
  const char* what() const noexcept override {
    return "simulated crash (persist fail point)";
  }
};

using CrashHook = std::function<bool(std::string_view point)>;

inline CrashHook& crash_hook_slot() {
  static CrashHook hook;
  return hook;
}

inline void set_crash_hook(CrashHook hook) {
  crash_hook_slot() = std::move(hook);
}

inline void clear_crash_hook() { crash_hook_slot() = nullptr; }

inline bool crash_requested(std::string_view point) {
  const auto& hook = crash_hook_slot();
  return hook && hook(point);
}

}  // namespace gretel::persist
