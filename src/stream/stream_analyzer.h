// Continuous streaming front end for the GRETEL analyzer.
//
//   producer ──offer()──▶ [bounded source ring] ──tick──▶ Analyzer
//                │  credits() / shed                │
//                └── backpressure ──────────────────┴──▶ StreamReports
//
// Batch GRETEL ingests a finite capture and reports at finish(); the
// StreamAnalyzer runs the same pipeline against an unbounded stream with
// three hard guarantees (docs/ARCHITECTURE.md, "Streaming mode"):
//
//   1. Bounded memory.  Every stateful stage is capped: the source ring
//      (stream_source_ring), the pending-request tables (stream_inflight_cap
//      split across shards), retained latency series (stream_series_cap,
//      with constant-memory P² sketches keeping full-history baselines),
//      metric retention (stream_metrics_retention_s) and the retained
//      report ring (stream_report_cap).  footprint() itemizes the state and
//      the soak test asserts the ceiling is flat under sustained overload.
//
//   2. Explicit backpressure with exact shed accounting.  offer() admits a
//      record or sheds one under stream_shed_policy; credits() tells a
//      cooperating producer how many records the ring will take without
//      shedding (0 while the gate is closed — it reopens at half
//      occupancy, giving hysteresis instead of flapping at the rim).
//      Every shed record is attributed to its exact stream position via
//      the same window-loss annotation a quarantined frame gets, so
//      reports spanning a shed gap carry degraded confidence and
//      offered == ingested + shed + queued() holds at all times.
//
//   3. Bounded report latency.  advance_to(watermark) runs a detection
//      tick each time the watermark crosses a stream_tick_ms boundary:
//      queued records are drained into the analyzer, ready reports are
//      emitted, pending triggers older than stream_max_report_delay_s are
//      force-emitted with the context that did arrive, idle-stream
//      orphans are reaped, and the steady-state stall watchdog runs.
//      Each report is stamped with its emission tick and the
//      trigger-to-emission delay (bench/bench_stream_latency.cpp measures
//      the fault-injection-to-first-report distribution on top of this).
//
// Determinism caveat: streaming reports are tick-quantized and, under the
// in-flight cap or shed pressure, depend on arrival timing — the batch
// byte-identity contract applies to batch mode only (which this class does
// not touch; all caps default off unless Options::streaming is set).
//
// Thread contract: single-threaded, like the Analyzer facade it wraps —
// one producer thread calls offer()/on_metric()/advance_to()/finish().
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "gretel/analyzer.h"
#include "persist/checkpoint.h"
#include "persist/journal.h"

namespace gretel::stream {

// One emitted diagnosis, stamped with its position in stream time.
struct StreamReport {
  core::Diagnosis diagnosis;
  // Tick (1-based) whose drain emitted the report; 0 for reports emitted
  // by finish() after the last tick.
  std::uint64_t tick = 0;
  // Watermark at emission.
  util::SimTime emitted_at;
  // Emission lag behind the detection timestamp (the last event of the
  // frozen window): how long the report waited for future context plus
  // tick quantization.  Clamped at 0 (a report can freeze a window whose
  // tail arrived ahead of the watermark).
  double report_delay_ms = 0.0;
};

// Flow accounting.  Invariant (asserted by the soak test):
//   offered == ingested + shed + queued().
struct StreamCounters {
  std::uint64_t offered = 0;    // records presented by the producer
  std::uint64_t ingested = 0;   // records drained into the analyzer
  std::uint64_t shed = 0;       // records dropped at admission, accounted
  std::uint64_t shed_episodes = 0;  // gate-open → gate-closed transitions
  std::uint64_t ticks = 0;
  std::uint64_t reports = 0;          // total reports emitted
  std::uint64_t reports_evicted = 0;  // evicted from the retained ring
  std::uint64_t metrics = 0;          // metric samples forwarded
};

// Itemized live state, for the bounded-memory soak assertions and the
// bench's peak-state tripwire.  approx_bytes() is an estimate built from
// element counts × element sizes (strings inside events/reports are
// counted for the source ring, where they dominate, and approximated
// elsewhere); its value is in being monotone in the actual footprint.
struct StateFootprint {
  std::size_t source_ring_records = 0;
  std::size_t source_ring_bytes = 0;  // queued wire payload bytes
  std::size_t window_capacity = 0;    // dual-buffer slots (fixed: 2α)
  std::size_t pending_requests = 0;   // latency pending-table entries
  std::size_t inflight_queue = 0;     // in-flight FIFO bookkeeping entries
  std::size_t series_points = 0;      // retained latency samples
  std::size_t metric_points = 0;      // retained metric samples
  std::size_t reports_retained = 0;

  std::size_t approx_bytes() const;
};

// Outcome of StreamAnalyzer::restore() — what survived the crash.
//
// Recovery invariant (asserted by the kill-point campaign): at most one
// checkpoint interval of learned baseline regresses, zero journaled
// reports are lost, and the flow ledger re-reconciles after restart
// (offered == ingested + shed with an empty ring at every checkpoint).
struct RecoveryInfo {
  bool recovered = false;  // a valid checkpoint was loaded and applied
  std::uint64_t checkpoint_seq = 0;
  std::uint64_t checkpoint_tick = 0;
  // Checkpoint files skipped because they failed CRC/decode (torn write
  // artifacts); recovery fell back to the next-newest valid one.
  std::size_t corrupt_checkpoints_skipped = 0;
  // Torn journal-tail records truncated on open (never fsync-acknowledged,
  // so nothing durable was lost).
  std::size_t journal_records_truncated = 0;
  // The checkpoint belonged to a different fingerprint DB (hot swap or
  // retrain between checkpoint and crash): learned state cold-started
  // rather than grafting baselines onto mismatched APIs.
  bool db_mismatch = false;
  // Journaled reports emitted after the checkpoint: durable and already
  // delivered pre-crash, so they are replayed here (and their sequence
  // numbers resumed), not re-delivered to the sink.
  std::vector<persist::JournalRecord> replayed;
};

class StreamAnalyzer {
 public:
  using ReportSink = std::function<void(const StreamReport&)>;

  // Wraps a streaming Analyzer (Options::streaming is forced on, arming
  // every bounded-state knob in options.config).  On a sharded config the
  // overflow policy is forced to DropOldestWithAccounting and the shard
  // watchdog is armed (250 ms default) — a streaming front end must shed
  // around a wedged shard worker, never block behind it.  `sink`, when
  // set, sees every report at emission; the newest stream_report_cap
  // reports are also retained in recent_reports() either way.
  StreamAnalyzer(const core::FingerprintDb* db,
                 const wire::ApiCatalog* catalog,
                 const stack::Deployment* deployment,
                 core::Analyzer::Options options, ReportSink sink = {});

  StreamAnalyzer(const StreamAnalyzer&) = delete;
  StreamAnalyzer& operator=(const StreamAnalyzer&) = delete;

  // Offers one captured record.  Returns true if it was queued; false if
  // it was shed (DropNewest) — under DropOldest the new record is always
  // queued and the return still reports whether *shedding* occurred via
  // counters().  Never blocks.
  bool offer(const net::WireRecord& record);

  // Admission credits: how many records offer() will queue without
  // shedding.  0 while the shed gate is closed (ring hit capacity and has
  // not yet drained to half).  A cooperating producer paces itself on
  // this; a non-cooperating one just gets the shed policy.
  std::size_t credits() const;

  // Metric samples bypass the ring (they are scalar and already bounded
  // by stream_metrics_retention_s) and go straight to the analyzer.
  void on_metric(wire::NodeId node, net::ResourceKind kind,
                 double t_seconds, double value);

  // Advances the stream watermark, running one detection tick per
  // stream_tick_ms boundary crossed.  The first call (or offer) anchors
  // the tick grid at the watermark's grid floor, so a capture starting at
  // t=600s does not replay 2400 empty ticks from the epoch.
  void advance_to(util::SimTime watermark);

  // End of stream: drains everything still queued, attributes trailing
  // shed losses, and flushes the analyzer (emitting reports whose future
  // context never arrived).  Final reports carry tick = 0.
  void finish();

  const StreamCounters& counters() const { return counters_; }
  std::size_t queued() const { return ring_.size(); }
  util::SimTime watermark() const { return watermark_; }
  bool gate_closed() const { return gate_closed_; }

  // Newest retained reports (bounded by stream_report_cap; older ones
  // were delivered to the sink and evicted, counters().reports_evicted).
  const std::deque<StreamReport>& recent_reports() const { return recent_; }

  // Live state itemization and the high-water mark of approx_bytes()
  // observed at tick boundaries (quiescent points).
  StateFootprint footprint();
  std::size_t peak_state_bytes() const { return peak_state_bytes_; }

  // Degraded-telemetry counters of the wrapped pipeline (quiescent
  // snapshot — call between offers, after a tick, or after finish()).
  monitor::PipelineHealthCounters health() { return analyzer_.health(); }
  core::Analyzer& analyzer() { return analyzer_; }
  const core::Analyzer& analyzer() const { return analyzer_; }

  // ---- Durability (persist/) -------------------------------------------
  //
  // When armed, every report is fsync'd to the append-only journal BEFORE
  // the sink sees it (fsync-before-acknowledge), and a GRTCKP01 checkpoint
  // of the learned analyzer state + flow ledger is written atomically every
  // checkpoint_interval_s of stream time (at a tick boundary, where the
  // ring is drained and the ledger reconciles with queued() == 0).
  // Durability never changes what is emitted: save paths are strictly
  // non-mutating, so a crash-free run with checkpointing on produces
  // byte-identical reports to one with it off.

  // Arms checkpoints + report journal under `dir` (created if missing).
  // Call before offering records.  Returns false if the journal cannot be
  // opened; the analyzer stays usable (durability off).
  bool enable_durability(const std::string& dir);
  bool durable() const { return journal_.has_value(); }
  const std::string& persist_dir() const { return persist_dir_; }

  // Sequence the next journaled report will get (0 when not durable):
  // exactly how many reports are on disk.
  std::uint64_t journal_next_seq() const {
    return journal_ ? journal_->next_seq() : 0;
  }

  // Writes a checkpoint of the current state immediately (used by finish()
  // and the tools' signal handlers).  Drains the ring first so the
  // snapshot is quiescent — the persisted ledger reconciles with
  // queued() == 0 no matter where between offers the call lands.  No-op
  // returning false when durability is off or the write fails.
  bool checkpoint_now();

  // Recovery: loads the newest valid checkpoint under `dir` (falling back
  // across corrupt ones), restores the learned analyzer state, flow
  // ledger, watermark and tick grid, truncates the journal's torn tail,
  // and replays the journaled report tail into RecoveryInfo (not the
  // sink — those reports were already delivered before the crash).  The
  // returned analyzer resumes durable.  With no checkpoint on disk this
  // degenerates to a cold start with durability armed.  Returns nullptr
  // only when the journal cannot be opened at all.
  static std::unique_ptr<StreamAnalyzer> restore(
      const core::FingerprintDb* db, const wire::ApiCatalog* catalog,
      const stack::Deployment* deployment, core::Analyzer::Options options,
      const std::string& dir, ReportSink sink = {},
      RecoveryInfo* info = nullptr);

 private:
  struct Slot {
    net::WireRecord rec;
    // Records shed immediately before this one (exact stream position for
    // the window-loss annotation).
    std::uint64_t losses_before = 0;
  };

  static core::Analyzer::Options prepare(core::Analyzer::Options options,
                                         StreamAnalyzer* self);
  util::SimTime grid_floor(util::SimTime t) const;
  void on_diagnosis(const core::Diagnosis& d);
  void drain_ring();
  void run_tick();

  const core::FingerprintDb* db_;
  const wire::ApiCatalog* catalog_;
  core::GretelConfig cfg_;       // effective (post-override) config copy
  util::SimDuration tick_len_;
  ReportSink sink_;
  core::Analyzer analyzer_;      // last: its sink lambda captures `this`

  std::deque<Slot> ring_;
  std::size_t ring_bytes_ = 0;   // queued rec.bytes payload total
  // Shed losses not yet anchored to a queued record: attributed before
  // the next admitted record, or at finish() if none follows.
  std::uint64_t tail_losses_ = 0;
  bool gate_closed_ = false;
  bool started_ = false;
  bool finishing_ = false;
  util::SimTime watermark_;
  StreamCounters counters_;
  std::deque<StreamReport> recent_;
  std::size_t peak_state_bytes_ = 0;

  // Durability state; armed by enable_durability() / restore().
  std::string persist_dir_;
  std::optional<persist::ReportJournal> journal_;
  std::uint64_t checkpoint_seq_ = 0;  // seq the next checkpoint file gets
  util::SimTime last_checkpoint_at_;  // watermark of the last checkpoint
  bool checkpoint_anchored_ = false;  // cadence anchor set (first tick)
  std::uint64_t db_catalog_hash_ = 0;  // identity of the DB we snapshot for
  std::uint32_t db_content_crc_ = 0;
};

}  // namespace gretel::stream
