#include "stream/stream_analyzer.h"

#include <algorithm>

#include "gretel/db_io.h"
#include "gretel/json_export.h"
#include "util/crc32.h"

namespace gretel::stream {

std::size_t StateFootprint::approx_bytes() const {
  // Element-size approximations for the fixed-stride stores; the source
  // ring adds its actual queued payload bytes on top of the record shells.
  std::size_t total = source_ring_bytes;
  total += source_ring_records * sizeof(net::WireRecord);
  total += window_capacity * (sizeof(wire::Event) + sizeof(std::uint64_t));
  total += pending_requests * 32;  // hash-map node: key + SimTime + links
  total += inflight_queue * 24;    // InflightEntry
  total += series_points * 16;     // (t, value) pair
  total += metric_points * 16;
  total += reports_retained * sizeof(StreamReport);
  return total;
}

core::Analyzer::Options StreamAnalyzer::prepare(
    core::Analyzer::Options options, StreamAnalyzer* self) {
  options.streaming = true;
  if (options.config.num_shards > 1) {
    // A streaming front end must degrade around a wedged shard worker,
    // never block behind it: force the accounted-drop overflow policy and
    // arm the submit-path watchdog if the caller left it off.
    options.config.overflow_policy =
        core::OverflowPolicy::DropOldestWithAccounting;
    if (options.config.watchdog_ms <= 0.0) options.config.watchdog_ms = 250.0;
  }
  // The lambda outlives construction only inside analyzer_, a member of
  // *self, so capturing the not-yet-constructed `this` is safe: it is not
  // invoked until events flow.
  options.diagnosis_sink = [self](const core::Diagnosis& d) {
    self->on_diagnosis(d);
  };
  return options;
}

StreamAnalyzer::StreamAnalyzer(const core::FingerprintDb* db,
                               const wire::ApiCatalog* catalog,
                               const stack::Deployment* deployment,
                               core::Analyzer::Options options,
                               ReportSink sink)
    : db_(db),
      catalog_(catalog),
      cfg_(options.config),
      tick_len_(util::SimDuration::nanos(std::max<std::int64_t>(
          1'000'000,
          static_cast<std::int64_t>(options.config.stream_tick_ms * 1e6)))),
      sink_(std::move(sink)),
      analyzer_(db, catalog, deployment, prepare(std::move(options), this)) {
  // cfg_ keeps the caller's view; the overrides prepare() applied matter
  // only inside the analyzer (shard plumbing), not to the stream knobs
  // read here.
}

util::SimTime StreamAnalyzer::grid_floor(util::SimTime t) const {
  const auto step = tick_len_.count();
  return util::SimTime((t.nanos() / step) * step);
}

bool StreamAnalyzer::offer(const net::WireRecord& record) {
  if (!started_) {
    started_ = true;
    watermark_ = grid_floor(record.ts);
  }
  ++counters_.offered;

  const std::size_t cap = std::max<std::size_t>(1, cfg_.stream_source_ring);
  if (ring_.size() >= cap) {
    if (!gate_closed_) {
      gate_closed_ = true;
      ++counters_.shed_episodes;
    }
    ++counters_.shed;
    if (cfg_.stream_shed_policy == core::StreamShedPolicy::DropNewest) {
      // The freshest record is the loss; it has no queued successor yet,
      // so the annotation trails until the next admitted record.
      ++tail_losses_;
      return false;
    }
    // DropOldest: evict the queue head to stay current.  Its own
    // losses_before plus itself carry forward to the new head (or to the
    // tail marker if the ring somehow empties — cap >= 1 prevents that
    // here, but finish() handles trailing losses anyway).
    Slot evicted = std::move(ring_.front());
    ring_.pop_front();
    ring_bytes_ -= evicted.rec.bytes.size();
    const std::uint64_t carried = evicted.losses_before + 1;
    if (!ring_.empty()) {
      ring_.front().losses_before += carried;
    } else {
      tail_losses_ += carried;
    }
  }

  Slot slot;
  slot.rec = record;
  slot.losses_before = tail_losses_;
  tail_losses_ = 0;
  ring_bytes_ += record.bytes.size();
  ring_.push_back(std::move(slot));
  return true;
}

std::size_t StreamAnalyzer::credits() const {
  if (gate_closed_) return 0;
  const std::size_t cap = std::max<std::size_t>(1, cfg_.stream_source_ring);
  return cap > ring_.size() ? cap - ring_.size() : 0;
}

void StreamAnalyzer::on_metric(wire::NodeId node, net::ResourceKind kind,
                               double t_seconds, double value) {
  ++counters_.metrics;
  analyzer_.on_metric(node, kind, t_seconds, value);
}

void StreamAnalyzer::advance_to(util::SimTime watermark) {
  if (!started_) {
    started_ = true;
    watermark_ = grid_floor(watermark);
    return;
  }
  while (watermark_ + tick_len_ <= watermark) {
    watermark_ += tick_len_;
    run_tick();
  }
}

void StreamAnalyzer::drain_ring() {
  while (!ring_.empty()) {
    Slot slot = std::move(ring_.front());
    ring_.pop_front();
    ring_bytes_ -= slot.rec.bytes.size();
    if (slot.losses_before > 0)
      analyzer_.record_ingest_loss(slot.losses_before);
    analyzer_.on_wire(slot.rec);
    ++counters_.ingested;
  }
  // Hysteresis: the gate reopens only once the ring has drained to half
  // capacity, so a producer pacing on credits() sees one long closed
  // window instead of admit/shed flapping at the rim.  A full drain
  // trivially clears the bar.
  if (gate_closed_ &&
      ring_.size() <= std::max<std::size_t>(1, cfg_.stream_source_ring) / 2) {
    gate_closed_ = false;
  }
}

void StreamAnalyzer::run_tick() {
  ++counters_.ticks;
  drain_ring();
  analyzer_.tick(watermark_);
  // Checkpoint cadence rides the tick grid: the ring just drained, so the
  // ledger reconciles with queued() == 0 inside the snapshot.  The first
  // tick anchors the cadence instead of checkpointing empty state.
  if (journal_) {
    if (!checkpoint_anchored_) {
      checkpoint_anchored_ = true;
      last_checkpoint_at_ = watermark_;
    } else if ((watermark_ - last_checkpoint_at_).to_seconds() >=
               cfg_.checkpoint_interval_s) {
      checkpoint_now();
    }
  }
  const auto bytes = footprint().approx_bytes();
  peak_state_bytes_ = std::max(peak_state_bytes_, bytes);
}

void StreamAnalyzer::finish() {
  drain_ring();
  if (tail_losses_ > 0) {
    analyzer_.record_ingest_loss(tail_losses_);
    tail_losses_ = 0;
  }
  finishing_ = true;
  analyzer_.finish();
  // Clean shutdown leaves a checkpoint at the final state, so a restart
  // resumes instead of replaying the last interval.
  if (journal_) checkpoint_now();
  const auto bytes = footprint().approx_bytes();
  peak_state_bytes_ = std::max(peak_state_bytes_, bytes);
}

void StreamAnalyzer::on_diagnosis(const core::Diagnosis& d) {
  StreamReport report;
  report.diagnosis = d;
  report.tick = finishing_ ? 0 : counters_.ticks;
  report.emitted_at = watermark_;
  report.report_delay_ms =
      std::max(0.0, (watermark_ - d.fault.detected_at).to_millis());
  if (journal_) {
    // fsync-before-acknowledge: the report is durable before the sink or
    // the retained ring ever sees it.  A crash between append and sink
    // delivery loses nothing — recovery replays the journal tail.
    journal_->append(report.tick, report.emitted_at, report.report_delay_ms,
                     core::to_json(d, *catalog_, *db_));
  }
  ++counters_.reports;
  if (sink_) sink_(report);
  recent_.push_back(std::move(report));
  const std::size_t cap = std::max<std::size_t>(1, cfg_.stream_report_cap);
  while (recent_.size() > cap) {
    recent_.pop_front();
    ++counters_.reports_evicted;
  }
}

StateFootprint StreamAnalyzer::footprint() {
  StateFootprint fp;
  fp.source_ring_records = ring_.size();
  fp.source_ring_bytes = ring_bytes_;
  fp.window_capacity = 2 * analyzer_.config().alpha();
  const auto& latency = analyzer_.latency_shards();
  fp.pending_requests = latency.pending();
  fp.inflight_queue = latency.inflight_queue();
  fp.series_points = latency.series_points();
  fp.metric_points = analyzer_.metrics().retained_points();
  fp.reports_retained = recent_.size();
  return fp;
}

bool StreamAnalyzer::enable_durability(const std::string& dir) {
  std::size_t truncated = 0;
  auto journal = persist::ReportJournal::open(
      dir, std::max<std::size_t>(1, cfg_.journal_segment_records), &truncated);
  if (!journal) return false;
  journal_ = std::move(*journal);
  persist_dir_ = dir;
  // DB identity, stamped into every checkpoint: restore() refuses to graft
  // learned baselines onto a different fingerprint DB.
  db_catalog_hash_ = core::catalog_hash(*catalog_);
  db_content_crc_ = util::crc32(core::encode_fingerprint_db(*db_, *catalog_));
  return true;
}

bool StreamAnalyzer::checkpoint_now() {
  if (!journal_) return false;
  // Quiesce: a mid-stream call (signal handler, manual snapshot) may land
  // with records queued — offered but not yet ingested.  Drain them so the
  // persisted ledger reconciles (offered == ingested + shed) and nothing
  // admitted before the snapshot is lost from accounting.
  drain_ring();
  persist::Checkpoint ckp;
  persist::CheckpointMeta& m = ckp.meta;
  m.checkpoint_seq = checkpoint_seq_;
  m.tick = counters_.ticks;
  m.watermark_ns = watermark_.nanos();
  m.journal_next_seq = journal_->next_seq();
  m.offered = counters_.offered;
  m.ingested = counters_.ingested;
  m.shed = counters_.shed;
  m.shed_episodes = counters_.shed_episodes;
  m.ticks = counters_.ticks;
  m.reports = counters_.reports;
  m.reports_evicted = counters_.reports_evicted;
  m.metrics = counters_.metrics;
  m.db_catalog_hash = db_catalog_hash_;
  m.db_content_crc = db_content_crc_;
  analyzer_.save_state(ckp.analyzer_state);
  if (!persist::write_checkpoint(persist_dir_, ckp,
                                 std::max<std::size_t>(1, cfg_.checkpoint_keep)))
    return false;
  ++checkpoint_seq_;
  last_checkpoint_at_ = watermark_;
  checkpoint_anchored_ = true;
  // Segments fully covered by this checkpoint will never be replayed.
  journal_->purge_below(m.journal_next_seq);
  return true;
}

std::unique_ptr<StreamAnalyzer> StreamAnalyzer::restore(
    const core::FingerprintDb* db, const wire::ApiCatalog* catalog,
    const stack::Deployment* deployment, core::Analyzer::Options options,
    const std::string& dir, ReportSink sink, RecoveryInfo* info) {
  RecoveryInfo local;
  RecoveryInfo& ri = info ? *info : local;
  ri = RecoveryInfo{};

  std::unique_ptr<StreamAnalyzer> sa(new StreamAnalyzer(
      db, catalog, deployment, std::move(options), std::move(sink)));

  // Opening the journal first truncates the torn tail (crash-mid-append
  // artifact) before anything reads it back.
  std::size_t truncated = 0;
  {
    auto journal = persist::ReportJournal::open(
        dir, std::max<std::size_t>(1, sa->cfg_.journal_segment_records),
        &truncated);
    if (!journal) return nullptr;
    sa->journal_ = std::move(*journal);
  }
  sa->persist_dir_ = dir;
  sa->db_catalog_hash_ = core::catalog_hash(*catalog);
  sa->db_content_crc_ =
      util::crc32(core::encode_fingerprint_db(*db, *catalog));
  ri.journal_records_truncated = truncated;

  std::uint64_t replay_from = 0;
  auto ckp = persist::load_newest_checkpoint(dir,
                                             &ri.corrupt_checkpoints_skipped);
  if (ckp) {
    if (ckp->meta.db_catalog_hash != sa->db_catalog_hash_ ||
        ckp->meta.db_content_crc != sa->db_content_crc_) {
      // Fingerprint DB hot-swapped or retrained between checkpoint and
      // restart: the learned baselines cold-start rather than grafting
      // onto mismatched APIs.  Journaled reports stay trusted — they were
      // emitted against the DB that was live at the time.
      ri.db_mismatch = true;
    } else {
      std::string_view state(ckp->analyzer_state);
      if (sa->analyzer_.load_state(state) && state.empty()) {
        const persist::CheckpointMeta& m = ckp->meta;
        sa->counters_.offered = m.offered;
        sa->counters_.ingested = m.ingested;
        sa->counters_.shed = m.shed;
        sa->counters_.shed_episodes = m.shed_episodes;
        sa->counters_.ticks = m.ticks;
        sa->counters_.reports = m.reports;
        sa->counters_.reports_evicted = m.reports_evicted;
        sa->counters_.metrics = m.metrics;
        // The checkpoint was written at a tick boundary, so the restored
        // watermark sits on the tick grid and advance_to() resumes the
        // same cadence.
        sa->watermark_ = util::SimTime(m.watermark_ns);
        sa->started_ = true;
        sa->checkpoint_seq_ = m.checkpoint_seq + 1;
        sa->last_checkpoint_at_ = sa->watermark_;
        sa->checkpoint_anchored_ = true;
        replay_from = m.journal_next_seq;
        ri.recovered = true;
        ri.checkpoint_seq = m.checkpoint_seq;
        ri.checkpoint_tick = m.tick;
      } else {
        // Sections passed CRC but the analyzer blob would not decode
        // (version skew): count it with the corrupt skips and cold-start.
        ++ri.corrupt_checkpoints_skipped;
      }
    }
  }

  // Replay the durable report tail (everything journaled after the
  // checkpoint mark — or the whole journal on a cold start).  These were
  // delivered before the crash; they resume sequence numbering, they are
  // not re-delivered.
  ri.replayed = persist::ReportJournal::read_from(dir, replay_from);
  sa->counters_.reports =
      std::max(sa->counters_.reports, sa->journal_->next_seq());
  return sa;
}

}  // namespace gretel::stream
