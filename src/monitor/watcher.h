// Software-dependency watchers (§5.1, §6 "System state monitoring").
//
// GRETEL "maintains watchers on third-party software dependencies" and
// "has watchers to detect TCP-level reachability to MySQL, RabbitMQ and NTP
// servers".  DependencyWatcher supports two substrates:
//
//  * oracle mode (default): polls the deployment's ground-truth software
//    state directly — daemon liveness per node plus reachability of the
//    shared infrastructure services.  Evidence is always Confirmed.
//  * probed mode: every check runs through a ProbeEngine (deadlines,
//    retries with backoff + jitter, circuit breakers, flap hysteresis)
//    against the same ground truth, optionally degraded by MonitorChaos.
//    With zero chaos and default knobs the probed watcher is byte-identical
//    to the oracle.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "monitor/probe.h"
#include "stack/deployment.h"
#include "util/time.h"
#include "wire/endpoint.h"

namespace gretel::monitor {

struct SoftwareFailure {
  wire::NodeId node;
  std::string dependency;  // daemon name or "tcp:<service>" reachability
  util::SimTime observed;
  // How the failure was established; oracle observations are Confirmed.
  EvidenceStatus evidence = EvidenceStatus::Confirmed;
};

// A dependency target whose state could not be confirmed over a window:
// breaker open, probes timed out, budget exhausted, or a state change still
// held by hysteresis.
struct EvidenceGap {
  wire::NodeId node;
  std::string dependency;
  EvidenceStatus status = EvidenceStatus::Unknown;
};

// Evidence collected over one poll window: confirmed/suspected failures,
// plus the targets whose state is unknown — so downstream consumers can
// distinguish "probed and clean" from "not actually observed".
struct WindowEvidence {
  std::vector<SoftwareFailure> failures;  // dedup per (node, dep), first obs
  std::vector<EvidenceGap> gaps;          // dedup per (node, dep), worst
  double probe_time_ms = 0.0;             // simulated probe time consumed
  bool budget_exhausted = false;
  bool degraded() const { return !gaps.empty() || budget_exhausted; }
};

class DependencyWatcher {
 public:
  // Oracle mode: direct ground-truth reads, the pre-probe behavior.
  explicit DependencyWatcher(const stack::Deployment* deployment);
  // Probed mode: checks run through a ProbeEngine degraded by `chaos`.
  DependencyWatcher(const stack::Deployment* deployment, ProbeConfig probe,
                    MonitorChaosConfig chaos);

  // Failures visible at one instant (oracle read; probes' ground truth).
  std::vector<SoftwareFailure> failures_at(util::SimTime t) const;

  // Failures visible at any poll within [from, to) at the given period;
  // deduplicated per (node, dependency) keeping the first observation.
  // Always the oracle path — window_evidence() is the probed analog.
  std::vector<SoftwareFailure> failures_in(
      util::SimTime from, util::SimTime to,
      util::SimDuration period = util::SimDuration::seconds(1)) const;

  // Polls every dependency target over [from, to).  Oracle mode returns
  // exactly failures_in() with empty gaps; probed mode runs the probe
  // state machine.  `budget_ms` > 0 caps the simulated probe time spent in
  // this window: once exceeded, remaining targets are skipped as Unknown
  // (a wedged agent cannot stall the caller past its deadline budget).
  WindowEvidence window_evidence(
      util::SimTime from, util::SimTime to,
      util::SimDuration period = util::SimDuration::seconds(1),
      double budget_ms = 0.0) const;

  // TCP-level reachability of a shared infrastructure service from anywhere
  // in the deployment: unreachable when its serving daemon is down.
  bool infra_reachable(wire::ServiceKind service, util::SimTime t) const;

  bool probed() const { return engine_ != nullptr; }
  // Probe-plane counters and chaos audit; zero/empty in oracle mode.
  ProbeStats probe_stats() const;
  std::vector<MonitorInjection> chaos_audit() const;
  // Exact per-action injection totals — independent of the audit log's
  // retention cap, so counter reconciliation stays exact even when the
  // entry list was shed.  Zero in oracle mode.
  std::uint64_t chaos_count(MonitorChaosAction action) const;
  // Audit entries shed past MonitorChaosConfig::audit_limit.
  std::uint64_t chaos_audit_dropped() const;

 private:
  const stack::Deployment* deployment_;
  // The probe engine mutates per-target breaker/hysteresis state on every
  // poll; it is mutable so the watcher keeps the read-style const API its
  // consumers (the root-cause engine) expect.  Single-threaded, like the
  // diagnosis path that drives it.
  mutable std::unique_ptr<ProbeEngine> engine_;
};

}  // namespace gretel::monitor
