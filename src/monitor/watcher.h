// Software-dependency watchers (§5.1, §6 "System state monitoring").
//
// GRETEL "maintains watchers on third-party software dependencies" and
// "has watchers to detect TCP-level reachability to MySQL, RabbitMQ and NTP
// servers".  DependencyWatcher polls the deployment's ground-truth software
// state: daemon liveness per node plus reachability of the shared
// infrastructure services from every node.
#pragma once

#include <string>
#include <vector>

#include "stack/deployment.h"
#include "util/time.h"
#include "wire/endpoint.h"

namespace gretel::monitor {

struct SoftwareFailure {
  wire::NodeId node;
  std::string dependency;  // daemon name or "tcp:<service>" reachability
  util::SimTime observed;
};

class DependencyWatcher {
 public:
  explicit DependencyWatcher(const stack::Deployment* deployment);

  // Failures visible at one instant.
  std::vector<SoftwareFailure> failures_at(util::SimTime t) const;

  // Failures visible at any poll within [from, to) at the given period;
  // deduplicated per (node, dependency) keeping the first observation.
  std::vector<SoftwareFailure> failures_in(
      util::SimTime from, util::SimTime to,
      util::SimDuration period = util::SimDuration::seconds(1)) const;

  // TCP-level reachability of a shared infrastructure service from anywhere
  // in the deployment: unreachable when its serving daemon is down.
  bool infra_reachable(wire::ServiceKind service, util::SimTime t) const;

 private:
  const stack::Deployment* deployment_;
};

}  // namespace gretel::monitor
