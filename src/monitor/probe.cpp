#include "monitor/probe.h"

#include <algorithm>
#include <cmath>

namespace gretel::monitor {

const char* to_string(EvidenceStatus status) {
  switch (status) {
    case EvidenceStatus::Confirmed: return "confirmed";
    case EvidenceStatus::Suspected: return "suspected";
    case EvidenceStatus::Stale: return "stale";
    case EvidenceStatus::Unknown: return "unknown";
  }
  return "unknown";
}

const char* to_string(MonitorChaosAction action) {
  switch (action) {
    case MonitorChaosAction::ProbeDrop: return "probe_drop";
    case MonitorChaosAction::ProbeDelay: return "probe_delay";
    case MonitorChaosAction::ProbeTimeout: return "probe_timeout";
    case MonitorChaosAction::FalsePositive: return "false_positive";
    case MonitorChaosAction::FalseNegative: return "false_negative";
    case MonitorChaosAction::AgentCrash: return "agent_crash";
    case MonitorChaosAction::MetricFreeze: return "metric_freeze";
  }
  return "unknown";
}

namespace {

// Per-decision tags keep the hash streams of the individual fate draws
// independent of each other.
enum DrawTag : std::uint64_t {
  kDrop = 1,
  kDelay = 2,
  kTimeout = 3,
  kFlip = 4,
  kCrashOnset = 5,
  kFreezeOnset = 6,
  kJitter = 7,
};

std::uint64_t mix64(std::uint64_t x) {
  // splitmix64 finalizer.
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::uint64_t hash_str(std::string_view s) {
  std::uint64_t h = 14695981039346656037ull;  // FNV-1a 64
  for (char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

// Stateless uniform in [0, 1): the same key always yields the same draw,
// whatever order probes execute in.
double uniform(std::uint64_t seed, std::uint64_t node,
               std::uint64_t target_hash, std::int64_t tick,
               std::int64_t attempt, std::uint64_t tag) {
  std::uint64_t h = mix64(seed ^ tag);
  h = mix64(h ^ (node + 1));
  h = mix64(h ^ target_hash);
  h = mix64(h ^ static_cast<std::uint64_t>(tick));
  h = mix64(h ^ static_cast<std::uint64_t>(attempt));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

MonitorChaos::MonitorChaos(MonitorChaosConfig config)
    : config_(std::move(config)), audit_(config_.audit_limit) {}

std::uint64_t MonitorChaos::count(MonitorChaosAction action) const {
  return counts_[static_cast<std::size_t>(action)];
}

bool MonitorChaos::agent_crashed_at(wire::NodeId node, util::SimTime t) {
  // Declarative outage windows first (not audited: deterministic spec).
  for (const auto& o : config_.agent_outages) {
    if (o.node == node && t >= o.start && t < o.end) return true;
  }
  if (config_.agent_crash_rate <= 0) return false;
  // Rate-based crash windows at one-second onset granularity: the agent is
  // down at t when any onset fired within the last `agent_crash_seconds`.
  const std::int64_t second = t.nanos() / 1'000'000'000;
  const int window = std::max(1, config_.agent_crash_seconds);
  for (std::int64_t onset = std::max<std::int64_t>(0, second - window + 1);
       onset <= second; ++onset) {
    if (uniform(config_.seed, node.value(), 0, onset, 0, kCrashOnset) <
        config_.agent_crash_rate) {
      if (crash_onsets_seen_.emplace(node.value(), onset).second) {
        audit_.push_back({MonitorChaosAction::AgentCrash, node.value(), "",
                          onset, window});
        ++counts_[static_cast<std::size_t>(MonitorChaosAction::AgentCrash)];
      }
      return true;
    }
  }
  return false;
}

MonitorChaos::ProbeFate MonitorChaos::probe_fate(wire::NodeId node,
                                                 std::string_view target,
                                                 std::int64_t tick_nanos,
                                                 int attempt,
                                                 bool target_healthy) {
  ProbeFate fate;
  if (!config_.enabled()) return fate;  // strict no-op: no draws, no audit

  const util::SimTime t(tick_nanos);
  for (const auto& o : config_.agent_outages) {
    if (o.node == node && t >= o.start && t < o.end) {
      (o.wedged ? fate.agent_wedged : fate.agent_crashed) = true;
      return fate;
    }
  }
  if (agent_crashed_at(node, t)) {
    fate.agent_crashed = true;
    return fate;
  }

  const auto th = hash_str(target);
  const auto draw = [&](std::uint64_t tag) {
    return uniform(config_.seed, node.value(), th, tick_nanos, attempt, tag);
  };
  const auto fire = [&](MonitorChaosAction action, std::int64_t detail) {
    audit_.push_back({action, node.value(), std::string(target), tick_nanos,
                      detail});
    ++counts_[static_cast<std::size_t>(action)];
  };

  // Loss stages first: a probe that never replies cannot lie.
  if (config_.probe_drop_rate > 0 && draw(kDrop) < config_.probe_drop_rate) {
    fate.dropped = true;
    fire(MonitorChaosAction::ProbeDrop, attempt);
    return fate;
  }
  if (config_.probe_delay_rate > 0 &&
      draw(kDelay) < config_.probe_delay_rate) {
    fate.delayed = true;
    fire(MonitorChaosAction::ProbeDelay, attempt);
    return fate;
  }
  if (config_.probe_timeout_rate > 0 &&
      draw(kTimeout) < config_.probe_timeout_rate) {
    fate.timed_out = true;
    fire(MonitorChaosAction::ProbeTimeout, attempt);
    return fate;
  }

  const double flip_rate = target_healthy ? config_.false_positive_rate
                                          : config_.false_negative_rate;
  if (flip_rate > 0 && draw(kFlip) < flip_rate) {
    fate.flipped = true;
    fire(target_healthy ? MonitorChaosAction::FalsePositive
                        : MonitorChaosAction::FalseNegative,
         attempt);
  }
  return fate;
}

bool MonitorChaos::metric_frozen(wire::NodeId node, std::string_view resource,
                                 util::SimTime t) {
  if (config_.metric_freeze_rate <= 0) return false;
  const auto th = hash_str(resource);
  const std::int64_t second = t.nanos() / 1'000'000'000;
  const int window = std::max(1, config_.metric_freeze_seconds);
  for (std::int64_t onset = std::max<std::int64_t>(0, second - window + 1);
       onset <= second; ++onset) {
    if (uniform(config_.seed, node.value(), th, onset, 0, kFreezeOnset) <
        config_.metric_freeze_rate) {
      // One audited injection per lost sample, so tests can reconcile the
      // monitor's skipped-sample counter against the audit exactly.
      audit_.push_back({MonitorChaosAction::MetricFreeze, node.value(),
                        std::string(resource), t.nanos(), onset});
      ++counts_[static_cast<std::size_t>(MonitorChaosAction::MetricFreeze)];
      return true;
    }
  }
  return false;
}

double MonitorChaos::jitter(wire::NodeId node, std::string_view target,
                            std::int64_t tick_nanos, int attempt) const {
  return uniform(config_.seed, node.value(), hash_str(target), tick_nanos,
                 attempt, kJitter);
}

ProbeEngine::ProbeEngine(ProbeConfig config, MonitorChaosConfig chaos)
    : config_(config), chaos_(std::move(chaos)) {}

double ProbeEngine::backoff_ms(wire::NodeId node, std::string_view dependency,
                               std::int64_t tick, int attempt) const {
  const double exp =
      config_.backoff_base_ms * std::ldexp(1.0, std::min(attempt, 30));
  const double capped = std::min(exp, config_.backoff_cap_ms);
  // Full jitter on the top half keeps retries desynchronized while the
  // schedule stays exactly reproducible for a fixed seed.
  return capped * (0.5 + 0.5 * chaos_.jitter(node, dependency, tick, attempt));
}

ProbeObservation ProbeEngine::probe(wire::NodeId node,
                                    std::string_view dependency,
                                    bool truth_up, util::SimTime t) {
  ++stats_.probes;
  auto& state = targets_[{node.value(), std::string(dependency)}];

  // Circuit breaker: an open breaker sheds probes (Unknown evidence) until
  // its cooldown elapses, then half-opens for a single trial probe.
  if (state.breaker == BreakerState::Open) {
    if (state.open_polls_left > 0) {
      --state.open_polls_left;
      ++stats_.breaker_skips;
      return {.up = state.reported_up, .usable = false,
              .evidence = EvidenceStatus::Unknown, .elapsed_ms = 0.0};
    }
    state.breaker = BreakerState::HalfOpen;
  }

  const std::int64_t tick = t.nanos();
  double elapsed_ms = 0.0;
  const int attempts_allowed =
      state.breaker == BreakerState::HalfOpen ? 1 : config_.retries + 1;

  for (int attempt = 0; attempt < attempts_allowed; ++attempt) {
    ++stats_.attempts;
    if (attempt > 0) {
      ++stats_.retries;
      elapsed_ms += backoff_ms(node, dependency, tick, attempt - 1);
    }
    const auto fate =
        chaos_.probe_fate(node, dependency, tick, attempt, truth_up);

    if (fate.agent_crashed) {
      // Connection refused: fails fast, costs (almost) nothing.
      ++stats_.drops;
      continue;
    }
    if (fate.agent_wedged || fate.delayed || fate.timed_out) {
      elapsed_ms += config_.timeout_ms;
      ++stats_.timeouts;
      continue;
    }
    if (fate.dropped) {
      // No reply ever arrives; the prober waits out the full deadline.
      elapsed_ms += config_.timeout_ms;
      ++stats_.drops;
      continue;
    }

    // A reply arrived.  Chaos may have flipped its verdict.
    bool observed_up = truth_up;
    if (fate.flipped) {
      observed_up = !observed_up;
      ++stats_.false_results;
    }

    state.consecutive_failures = 0;
    if (state.breaker == BreakerState::HalfOpen) {
      state.breaker = BreakerState::Closed;
    }

    // Flap suppression: the reported state only switches after
    // `flap_hysteresis` consecutive observations agree on the change.
    EvidenceStatus evidence =
        attempt == 0 ? EvidenceStatus::Confirmed : EvidenceStatus::Suspected;
    if (observed_up != state.reported_up) {
      if (observed_up == state.candidate_up) {
        ++state.candidate_streak;
      } else {
        state.candidate_up = observed_up;
        state.candidate_streak = 1;
      }
      if (state.candidate_streak >= std::max(1, config_.flap_hysteresis)) {
        state.reported_up = observed_up;
        state.candidate_streak = 0;
      } else {
        // Held by hysteresis: keep reporting the old state, flag the
        // pending change as Suspected.
        ++stats_.flap_suppressed;
        return {.up = state.reported_up, .usable = true,
                .evidence = EvidenceStatus::Suspected, .flap_held = true,
                .elapsed_ms = elapsed_ms};
      }
    } else {
      state.candidate_up = observed_up;
      state.candidate_streak = 0;
    }
    return {.up = state.reported_up, .usable = true, .evidence = evidence,
            .elapsed_ms = elapsed_ms};
  }

  // Every attempt failed: the probe yields no usable evidence and the
  // breaker accumulates a failure.
  ++stats_.probe_failures;
  ++state.consecutive_failures;
  if (state.breaker == BreakerState::HalfOpen ||
      state.consecutive_failures >= std::max(1, config_.breaker_open_after)) {
    if (state.breaker != BreakerState::Open) ++stats_.breaker_trips;
    state.breaker = BreakerState::Open;
    state.open_polls_left = std::max(1, config_.breaker_open_polls);
    state.consecutive_failures = 0;
  }
  return {.up = state.reported_up, .usable = false,
          .evidence = EvidenceStatus::Unknown, .elapsed_ms = elapsed_ms};
}

}  // namespace gretel::monitor
