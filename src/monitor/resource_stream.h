// Online anomaly detection over resource-utilization streams (§6: GRETEL
// "uses the LS mode in the tsoutliers to detect the outliers in the
// continuous stream of API latencies and resource utilization received at
// the analyzer").
//
// Each (node, resource) pair gets its own pluggable detector; confirmed
// level shifts become ResourceAlarms the analyzer attaches to its
// diagnoses as corroborating evidence (the red level-shift marks on the
// CPU pane of the paper's case studies).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "detect/outlier.h"
#include "net/node.h"
#include "wire/endpoint.h"

namespace gretel::monitor {

struct ResourceAlarm {
  wire::NodeId node;
  net::ResourceKind kind = net::ResourceKind::CpuPct;
  detect::Alarm alarm;
};

class ResourceAnomalyStream {
 public:
  using Factory = std::function<std::unique_ptr<detect::OutlierDetector>()>;

  explicit ResourceAnomalyStream(Factory factory);
  ResourceAnomalyStream();  // level-shift default

  // Feeds one sample; a confirmed shift returns an alarm (also retained in
  // alarms()).
  std::optional<ResourceAlarm> observe(wire::NodeId node,
                                       net::ResourceKind kind,
                                       double t_seconds, double value);

  const std::vector<ResourceAlarm>& alarms() const { return alarms_; }

  // Alarms for one node inside [from_s, to_s) — the root-cause engine's
  // corroboration query.
  std::vector<ResourceAlarm> alarms_for(wire::NodeId node, double from_s,
                                        double to_s) const;

  std::size_t samples() const { return samples_; }

  // Checkpoint support (src/persist/): serializes every (node, resource)
  // detector's learned state plus the retained alarm list and sample count,
  // keys sorted for deterministic bytes.  load_state rebuilds detectors via
  // this stream's factory; torn input or a detector-type mismatch resets
  // the stream and returns false.
  void save_state(std::string& out) const;
  bool load_state(std::string_view& in);

 private:
  static std::uint32_t key(wire::NodeId node, net::ResourceKind kind) {
    return (std::uint32_t{node.value()} << 8) |
           static_cast<std::uint32_t>(kind);
  }

  Factory factory_;
  std::unordered_map<std::uint32_t,
                     std::unique_ptr<detect::OutlierDetector>>
      detectors_;
  std::vector<ResourceAlarm> alarms_;
  std::size_t samples_ = 0;
};

}  // namespace gretel::monitor
