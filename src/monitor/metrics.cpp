#include "monitor/metrics.h"

namespace gretel::monitor {

void MetricsStore::record(wire::NodeId node, net::ResourceKind kind,
                          double t_seconds, double value) {
  series_[key(node, kind)].add(t_seconds, value);
  ++total_samples_;
}

const util::TimeSeries* MetricsStore::series(wire::NodeId node,
                                             net::ResourceKind kind) const {
  const auto it = series_.find(key(node, kind));
  return it == series_.end() ? nullptr : &it->second;
}

void MetricsStore::clear() {
  series_.clear();
  total_samples_ = 0;
}

ResourceMonitor::ResourceMonitor(const stack::Deployment* deployment,
                                 util::SimDuration period, std::uint64_t seed)
    : deployment_(deployment), period_(period), rng_(seed) {}

void ResourceMonitor::sample_range(util::SimTime from, util::SimTime to,
                                   MetricsStore& store) {
  sample_range(from, to,
               [&store](wire::NodeId node, net::ResourceKind kind,
                        double t_seconds, double value) {
                 store.record(node, kind, t_seconds, value);
               });
}

void ResourceMonitor::sample_range(util::SimTime from, util::SimTime to,
                                   const Sink& sink) {
  for (util::SimTime t = from; t < to; t += period_) {
    for (auto node_id : deployment_->node_ids()) {
      const auto& node = deployment_->node(node_id);
      for (std::size_t k = 0; k < net::kResourceKinds; ++k) {
        const auto kind = static_cast<net::ResourceKind>(k);
        sink(node_id, kind, t.to_seconds(), node.sample(kind, t, rng_));
      }
    }
  }
}

}  // namespace gretel::monitor
