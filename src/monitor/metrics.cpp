#include "monitor/metrics.h"

#include <cstdio>

namespace gretel::monitor {

std::string PipelineHealthCounters::to_json() const {
  std::string out = "{";
  const auto field = [&out](const char* name, std::uint64_t v) {
    if (out.size() > 1) out += ", ";
    out += '"';
    out += name;
    out += "\": ";
    out += std::to_string(v);
  };
  field("frames_decoded", frames_decoded);
  field("frames_quarantined", frames_quarantined);
  field("frames_unknown_api", frames_unknown_api);
  field("frames_non_monotonic", frames_non_monotonic);
  field("losses_recorded", losses_recorded);
  field("overflow_drops", overflow_drops);
  field("watchdog_trips", watchdog_trips);
  field("orphans_reaped", orphans_reaped);
  field("latency_clamped", latency_clamped);
  field("latency_rejected", latency_rejected);
  field("stale_freezes", stale_freezes);
  field("degraded_reports", degraded_reports);
  field("probe_attempts", probe_attempts);
  field("probe_retries", probe_retries);
  field("probe_timeouts", probe_timeouts);
  field("probe_drops", probe_drops);
  field("breaker_trips", breaker_trips);
  field("breaker_skips", breaker_skips);
  field("flap_suppressed", flap_suppressed);
  field("probe_budget_exhausted", probe_budget_exhausted);
  field("stale_series", stale_series);
  field("frozen_samples", frozen_samples);
  field("inflight_evicted", inflight_evicted);
  field("series_trimmed", series_trimmed);
  field("stalled_shards", stalled_shards);
  out += ", \"shard_progress_age_ms\": [";
  for (std::size_t i = 0; i < shard_progress_age_ms.size(); ++i) {
    if (i) out += ", ";
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.1f", shard_progress_age_ms[i]);
    out += buf;
  }
  out += "]}";
  return out;
}

void MetricsStore::record(wire::NodeId node, net::ResourceKind kind,
                          double t_seconds, double value) {
  auto& series = series_[key(node, kind)];
  series.add(t_seconds, value);
  ++total_samples_;
  if (retention_s_ > 0.0) {
    // Trim from the front up to the horizon.  Each point is scanned once
    // on its way out, so the cost is amortized O(1) per record.
    const double cutoff = t_seconds - retention_s_;
    const auto pts = series.points();
    std::size_t drop = 0;
    while (drop < pts.size() && pts[drop].t_seconds < cutoff) ++drop;
    series.drop_front(drop);
  }
}

const util::TimeSeries* MetricsStore::series(wire::NodeId node,
                                             net::ResourceKind kind) const {
  const auto it = series_.find(key(node, kind));
  return it == series_.end() ? nullptr : &it->second;
}

std::optional<double> MetricsStore::watermark_s(wire::NodeId node,
                                                net::ResourceKind kind) const {
  const auto it = series_.find(key(node, kind));
  if (it == series_.end() || it->second.empty()) return std::nullopt;
  return it->second.points().back().t_seconds;
}

std::size_t MetricsStore::retained_points() const {
  std::size_t total = 0;
  for (const auto& [k, s] : series_) total += s.size();
  return total;
}

void MetricsStore::clear() {
  series_.clear();
  total_samples_ = 0;
}

ResourceMonitor::ResourceMonitor(const stack::Deployment* deployment,
                                 util::SimDuration period, std::uint64_t seed)
    : deployment_(deployment), period_(period), rng_(seed) {}

ResourceMonitor::ResourceMonitor(const stack::Deployment* deployment,
                                 util::SimDuration period, std::uint64_t seed,
                                 MonitorChaosConfig chaos)
    : deployment_(deployment),
      period_(period),
      rng_(seed),
      chaos_(MonitorChaos(std::move(chaos))) {}

void ResourceMonitor::sample_range(util::SimTime from, util::SimTime to,
                                   MetricsStore& store) {
  sample_range(from, to,
               [&store](wire::NodeId node, net::ResourceKind kind,
                        double t_seconds, double value) {
                 store.record(node, kind, t_seconds, value);
               });
}

void ResourceMonitor::sample_range(util::SimTime from, util::SimTime to,
                                   const Sink& sink) {
  const bool chaotic = chaos_ && chaos_->config().enabled();
  for (util::SimTime t = from; t < to; t += period_) {
    for (auto node_id : deployment_->node_ids()) {
      const auto& node = deployment_->node(node_id);
      for (std::size_t k = 0; k < net::kResourceKinds; ++k) {
        const auto kind = static_cast<net::ResourceKind>(k);
        // The ground-truth draw happens unconditionally so a frozen stream
        // changes which samples are *delivered*, never the values of the
        // survivors — chaos sweeps stay comparable sample-for-sample.
        const double value = node.sample(kind, t, rng_);
        if (chaotic && chaos_->metric_frozen(node_id, to_string(kind), t)) {
          ++frozen_samples_;
          continue;
        }
        sink(node_id, kind, t.to_seconds(), value);
      }
    }
  }
}

}  // namespace gretel::monitor
