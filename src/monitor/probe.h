// Probe-based monitoring substrate (§5.1, §6 "System state monitoring").
//
// The oracle watchers read ground-truth deployment state directly, which
// means monitoring evidence can never time out, flap, go stale, or lie —
// exactly the failure modes a real collectd/TCP-watcher substrate exhibits
// (cf. the non-intrusive event-analysis resilience argument of
// arXiv:2301.07422).  This header models the monitoring plane itself as a
// fallible component:
//
//  * every dependency check is a *probe* with a per-attempt deadline,
//    bounded retries, exponential backoff and deterministic seeded jitter;
//  * each (node, dependency) target has a circuit breaker
//    (closed → open → half-open) so a wedged agent costs a bounded amount
//    of probe time before its targets are reported Unknown;
//  * reported state changes pass a flap-suppression hysteresis (N
//    consecutive agreeing observations);
//  * MonitorChaos injects probe-level faults (drop, delay past deadline,
//    timeout, false positive/negative results, agent crash/restart, frozen
//    metric streams) from fixed per-probe hash draws, in the style of
//    net/chaos.h: with every rate at zero the injector is a strict no-op
//    that never draws, the affected set at rate r nests inside the set at
//    any r' > r (monotone loss sweeps), and every injection lands in an
//    audit log tests reconcile against the probe counters (the
//    fault-injection-analytics methodology of arXiv:2010.00331).
//
// Evidence quality is first-class: every observation carries an
// EvidenceStatus so Algorithm 3 can distinguish "probed and clean" from
// "stale/unknown" instead of treating missing evidence as innocence.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "stack/faults.h"
#include "util/capped_log.h"
#include "util/time.h"
#include "wire/endpoint.h"

namespace gretel::monitor {

// Quality of one piece of monitoring evidence.
//  Confirmed — a first-attempt probe (or the oracle) observed it directly.
//  Suspected — observed, but through degraded machinery: a retried probe,
//              or a state change still inside the flap-hysteresis window.
//  Stale     — judged from data whose freshness watermark predates the
//              queried window (frozen metric stream, lagging agent).
//  Unknown   — no usable evidence: breaker open, every attempt timed out
//              or was dropped, or the probe budget was exhausted.
enum class EvidenceStatus : std::uint8_t { Confirmed, Suspected, Stale,
                                           Unknown };

const char* to_string(EvidenceStatus status);

// Knobs of the probe engine.  The defaults preserve exact legacy behavior
// under zero chaos: probes succeed on the first attempt at zero simulated
// cost and flap_hysteresis = 1 reports every state change immediately, so
// the probed watcher is byte-identical to the oracle watcher.
struct ProbeConfig {
  double timeout_ms = 100.0;     // per-attempt reply deadline
  int retries = 2;               // additional attempts after the first
  double backoff_base_ms = 10.0; // backoff before retry r: base · 2^r ...
  double backoff_cap_ms = 1000.0;  // ... capped here, plus seeded jitter
  int breaker_open_after = 3;    // consecutive probe failures that open
  int breaker_open_polls = 4;    // polls skipped while open, then half-open
  int flap_hysteresis = 1;       // agreeing observations to switch state
  std::uint64_t seed = 1;        // jitter derivation seed
};

enum class MonitorChaosAction : std::uint8_t {
  ProbeDrop,      // probe lost in flight: no reply, costs the full deadline
  ProbeDelay,     // reply exists but arrives past the deadline
  ProbeTimeout,   // agent accepted the probe and never answered
  FalsePositive,  // healthy target reported failed
  FalseNegative,  // failed target reported healthy
  AgentCrash,     // monitoring agent crash onset (restarts after a window)
  MetricFreeze,   // one (node, resource) sample lost to a frozen stream
};

const char* to_string(MonitorChaosAction action);

// One injected monitoring fault, in injection order.
struct MonitorInjection {
  MonitorChaosAction action = MonitorChaosAction::ProbeDrop;
  std::uint8_t node = 0;
  std::string target;      // dependency name, "tcp:<svc>", or resource name
  std::int64_t tick = 0;   // poll time (nanos) or onset second
  std::int64_t detail = 0; // attempt index, crash/freeze length, ...
};

struct MonitorChaosConfig {
  std::uint64_t seed = 1;

  // Probe-level faults, i.i.d. per (target, poll, attempt).
  double probe_drop_rate = 0.0;
  double probe_delay_rate = 0.0;
  double probe_timeout_rate = 0.0;

  // Lying results: applied to probes that do deliver a reply.
  double false_positive_rate = 0.0;
  double false_negative_rate = 0.0;

  // Agent crash/restart: with probability `agent_crash_rate` per
  // (node, second) a node's monitoring agent crashes and fast-fails every
  // probe for the next `agent_crash_seconds` seconds, then restarts.
  double agent_crash_rate = 0.0;
  int agent_crash_seconds = 8;

  // Frozen metric streams: with probability `metric_freeze_rate` per
  // (node, resource, second) the stream freezes — samples are silently
  // lost — for `metric_freeze_seconds` seconds.
  double metric_freeze_rate = 0.0;
  int metric_freeze_seconds = 16;

  // Declarative agent outages (stack/faults.h): wedged agents hang every
  // probe to its deadline; crashed agents fail fast.  Deterministic spec,
  // so not audited as injections.
  std::vector<stack::MonitorAgentFault> agent_outages;

  // Audit-log retention: newest `audit_limit` injections kept (0 =
  // unbounded).  count() totals stay exact past the cap; audit().dropped()
  // counts the shed entries.
  std::size_t audit_limit = 65536;

  bool enabled() const {
    return probe_drop_rate > 0 || probe_delay_rate > 0 ||
           probe_timeout_rate > 0 || false_positive_rate > 0 ||
           false_negative_rate > 0 || agent_crash_rate > 0 ||
           metric_freeze_rate > 0 || !agent_outages.empty();
  }
};

// Deterministic monitoring-fault injector.  Every decision is one uniform
// derived by hashing (seed, node, target, tick, attempt, decision-tag) and
// compared against its rate — stateless draws, so a probe's fate does not
// depend on scheduling order, zero rates never consult the hash, and the
// affected set at rate r is a subset of the affected set at any r' > r.
class MonitorChaos {
 public:
  explicit MonitorChaos(MonitorChaosConfig config);

  struct ProbeFate {
    bool dropped = false;
    bool delayed = false;
    bool timed_out = false;
    bool flipped = false;        // false positive/negative applied
    bool agent_crashed = false;  // rate-based crash window active
    bool agent_wedged = false;   // declarative wedge window active
  };

  // Fate of one probe attempt.  `target_healthy` selects which flip rate
  // applies.  Fired injections are appended to the audit log.
  ProbeFate probe_fate(wire::NodeId node, std::string_view target,
                       std::int64_t tick_nanos, int attempt,
                       bool target_healthy);

  // True when the (node, resource) stream is frozen at `t`; audits one
  // MetricFreeze injection per lost sample.
  bool metric_frozen(wire::NodeId node, std::string_view resource,
                     util::SimTime t);

  // Deterministic jitter in [0, 1) for retry `attempt` of a probe; used by
  // the backoff schedule.  Derived from the chaos seed so a fixed seed
  // reproduces the exact retry timeline.
  double jitter(wire::NodeId node, std::string_view target,
                std::int64_t tick_nanos, int attempt) const;

  const MonitorChaosConfig& config() const { return config_; }
  // Newest config.audit_limit injections in order; count() totals remain
  // exact past the cap (audit().dropped() counts shed entries).
  const util::CappedLog<MonitorInjection>& audit() const { return audit_; }
  std::uint64_t count(MonitorChaosAction action) const;

 private:
  bool agent_crashed_at(wire::NodeId node, util::SimTime t);

  MonitorChaosConfig config_;
  util::CappedLog<MonitorInjection> audit_;
  std::uint64_t counts_[7] = {};
  // Rate-based crash onsets already audited (dedup across queries).
  std::set<std::pair<std::uint8_t, std::int64_t>> crash_onsets_seen_;
};

// Flat probe-plane counters; aggregated into PipelineHealthCounters.
struct ProbeStats {
  std::uint64_t probes = 0;        // logical probes (target × poll)
  std::uint64_t attempts = 0;      // wire attempts, including retries
  std::uint64_t retries = 0;       // attempts beyond the first
  std::uint64_t timeouts = 0;      // attempts lost to deadline expiry
  std::uint64_t drops = 0;         // attempts failed fast (crash, refused)
  std::uint64_t probe_failures = 0;  // logical probes with no usable reply
  std::uint64_t false_results = 0;   // chaos-flipped replies delivered
  std::uint64_t breaker_trips = 0;   // closed → open transitions
  std::uint64_t breaker_skips = 0;   // probes skipped on an open breaker
  std::uint64_t flap_suppressed = 0; // observations held by hysteresis
  std::uint64_t budget_exhausted = 0;  // targets skipped on spent budget
};

// One probed observation of a dependency target.
struct ProbeObservation {
  bool up = true;
  bool usable = false;           // false: no reply survived (Unknown)
  EvidenceStatus evidence = EvidenceStatus::Unknown;
  bool flap_held = false;        // a raw state change is pending hysteresis
  double elapsed_ms = 0.0;       // simulated probe time consumed
};

// Scheduled prober for (node, dependency) targets.  Owns per-target breaker
// and hysteresis state; long-lived, like the monitoring agents it models.
class ProbeEngine {
 public:
  ProbeEngine(ProbeConfig config, MonitorChaosConfig chaos);

  // Probes one target at poll time `t` against ground truth `truth_up`.
  // The returned observation reflects breaker, retries, chaos, and
  // hysteresis; `elapsed_ms` is the simulated time the probe consumed.
  ProbeObservation probe(wire::NodeId node, std::string_view dependency,
                         bool truth_up, util::SimTime t);

  const ProbeStats& stats() const { return stats_; }
  ProbeStats& stats() { return stats_; }
  MonitorChaos& chaos() { return chaos_; }
  const MonitorChaos& chaos() const { return chaos_; }
  const ProbeConfig& config() const { return config_; }

 private:
  enum class BreakerState : std::uint8_t { Closed, Open, HalfOpen };

  struct TargetState {
    BreakerState breaker = BreakerState::Closed;
    int consecutive_failures = 0;
    int open_polls_left = 0;
    // Flap suppression: reported state trails raw observations until
    // `flap_hysteresis` consecutive observations agree.
    bool reported_up = true;
    bool candidate_up = true;
    int candidate_streak = 0;
  };

  double backoff_ms(wire::NodeId node, std::string_view dependency,
                    std::int64_t tick, int attempt) const;

  ProbeConfig config_;
  MonitorChaos chaos_;
  ProbeStats stats_;
  std::map<std::pair<std::uint8_t, std::string>, TargetState> targets_;
};

}  // namespace gretel::monitor
