#include "monitor/watcher.h"

#include <map>
#include <set>
#include <utility>

namespace gretel::monitor {

namespace {
const char* infra_daemon(wire::ServiceKind s) {
  switch (s) {
    case wire::ServiceKind::MySql:
      return "mysqld";
    case wire::ServiceKind::RabbitMq:
      return "rabbitmq-server";
    case wire::ServiceKind::Ntp:
      return "ntpd";
    default:
      return nullptr;
  }
}

constexpr wire::ServiceKind kInfraServices[] = {
    wire::ServiceKind::MySql, wire::ServiceKind::RabbitMq,
    wire::ServiceKind::Ntp};

int severity(EvidenceStatus s) {
  switch (s) {
    case EvidenceStatus::Confirmed: return 0;
    case EvidenceStatus::Suspected: return 1;
    case EvidenceStatus::Stale: return 2;
    case EvidenceStatus::Unknown: return 3;
  }
  return 3;
}
}  // namespace

DependencyWatcher::DependencyWatcher(const stack::Deployment* deployment)
    : deployment_(deployment) {}

DependencyWatcher::DependencyWatcher(const stack::Deployment* deployment,
                                     ProbeConfig probe,
                                     MonitorChaosConfig chaos)
    : deployment_(deployment),
      engine_(std::make_unique<ProbeEngine>(probe, std::move(chaos))) {}

std::vector<SoftwareFailure> DependencyWatcher::failures_at(
    util::SimTime t) const {
  std::vector<SoftwareFailure> out;
  for (auto id : deployment_->node_ids()) {
    const auto& node = deployment_->node(id);
    for (auto& name : node.failed_software(t)) {
      out.push_back({id, std::move(name), t, EvidenceStatus::Confirmed});
    }
  }
  // Reachability of shared infra from the rest of the deployment.
  for (auto svc : kInfraServices) {
    if (!deployment_->nodes_for(svc).empty() && !infra_reachable(svc, t)) {
      out.push_back({deployment_->primary_node_for(svc),
                     "tcp:" + std::string(to_string(svc)), t,
                     EvidenceStatus::Confirmed});
    }
  }
  return out;
}

std::vector<SoftwareFailure> DependencyWatcher::failures_in(
    util::SimTime from, util::SimTime to, util::SimDuration period) const {
  std::vector<SoftwareFailure> out;
  std::set<std::pair<std::uint8_t, std::string>> seen;
  for (util::SimTime t = from; t < to; t += period) {
    for (auto& f : failures_at(t)) {
      if (seen.emplace(f.node.value(), f.dependency).second)
        out.push_back(std::move(f));
    }
  }
  return out;
}

WindowEvidence DependencyWatcher::window_evidence(util::SimTime from,
                                                  util::SimTime to,
                                                  util::SimDuration period,
                                                  double budget_ms) const {
  WindowEvidence ev;
  if (!engine_) {
    // Oracle substrate: the probed path degenerates to the legacy direct
    // read — Confirmed failures, no gaps, zero probe time.
    ev.failures = failures_in(from, to, period);
    return ev;
  }

  std::set<std::pair<std::uint8_t, std::string>> failed_seen;
  std::map<std::pair<std::uint8_t, std::string>, EvidenceStatus> gap_worst;

  // One logical probe per target per poll, in a fixed deterministic order
  // (nodes by id, daemons in install order, then infra reachability) so a
  // fixed chaos seed reproduces the exact probe timeline.
  const auto probe_target = [&](wire::NodeId node, const std::string& dep,
                                bool truth_up, util::SimTime t) {
    if (budget_ms > 0 && ev.probe_time_ms >= budget_ms) {
      // Deadline budget spent: remaining targets are Unknown, not clean.
      ++engine_->stats().budget_exhausted;
      ev.budget_exhausted = true;
      auto& worst = gap_worst
                        .try_emplace({node.value(), dep},
                                     EvidenceStatus::Unknown)
                        .first->second;
      if (severity(EvidenceStatus::Unknown) > severity(worst))
        worst = EvidenceStatus::Unknown;
      return;
    }
    const auto obs = engine_->probe(node, dep, truth_up, t);
    ev.probe_time_ms += obs.elapsed_ms;
    if (obs.usable && !obs.up) {
      if (failed_seen.emplace(node.value(), dep).second)
        ev.failures.push_back({node, dep, t, obs.evidence});
      return;
    }
    if (!obs.usable || obs.flap_held) {
      const auto status =
          obs.usable ? EvidenceStatus::Suspected : EvidenceStatus::Unknown;
      auto [it, inserted] = gap_worst.try_emplace({node.value(), dep}, status);
      if (!inserted && severity(status) > severity(it->second))
        it->second = status;
    }
  };

  for (util::SimTime t = from; t < to; t += period) {
    for (auto id : deployment_->node_ids()) {
      const auto& node = deployment_->node(id);
      for (const auto& dep : node.software()) {
        probe_target(id, dep, node.software_running(dep, t), t);
      }
    }
    for (auto svc : kInfraServices) {
      if (deployment_->nodes_for(svc).empty()) continue;
      probe_target(deployment_->primary_node_for(svc),
                   "tcp:" + std::string(to_string(svc)),
                   infra_reachable(svc, t), t);
    }
  }

  // A target that did produce a (confirmed or suspected) failure is not a
  // gap, whatever happened to its other polls in the window.
  for (auto& [key, status] : gap_worst) {
    if (failed_seen.count(key)) continue;
    ev.gaps.push_back({wire::NodeId(key.first), key.second, status});
  }
  return ev;
}

bool DependencyWatcher::infra_reachable(wire::ServiceKind service,
                                        util::SimTime t) const {
  const char* daemon = infra_daemon(service);
  if (!daemon) return true;
  for (auto id : deployment_->nodes_for(service)) {
    if (deployment_->node(id).software_running(daemon, t)) return true;
  }
  return false;
}

ProbeStats DependencyWatcher::probe_stats() const {
  return engine_ ? engine_->stats() : ProbeStats{};
}

std::vector<MonitorInjection> DependencyWatcher::chaos_audit() const {
  return engine_ ? engine_->chaos().audit().snapshot()
                 : std::vector<MonitorInjection>{};
}

std::uint64_t DependencyWatcher::chaos_count(
    MonitorChaosAction action) const {
  return engine_ ? engine_->chaos().count(action) : 0;
}

std::uint64_t DependencyWatcher::chaos_audit_dropped() const {
  return engine_ ? engine_->chaos().audit().dropped() : 0;
}

}  // namespace gretel::monitor
