#include "monitor/watcher.h"

#include <set>
#include <utility>

namespace gretel::monitor {

namespace {
const char* infra_daemon(wire::ServiceKind s) {
  switch (s) {
    case wire::ServiceKind::MySql:
      return "mysqld";
    case wire::ServiceKind::RabbitMq:
      return "rabbitmq-server";
    case wire::ServiceKind::Ntp:
      return "ntpd";
    default:
      return nullptr;
  }
}
}  // namespace

DependencyWatcher::DependencyWatcher(const stack::Deployment* deployment)
    : deployment_(deployment) {}

std::vector<SoftwareFailure> DependencyWatcher::failures_at(
    util::SimTime t) const {
  std::vector<SoftwareFailure> out;
  for (auto id : deployment_->node_ids()) {
    const auto& node = deployment_->node(id);
    for (auto& name : node.failed_software(t)) {
      out.push_back({id, std::move(name), t});
    }
  }
  // Reachability of shared infra from the rest of the deployment.
  for (auto svc : {wire::ServiceKind::MySql, wire::ServiceKind::RabbitMq,
                   wire::ServiceKind::Ntp}) {
    if (!deployment_->nodes_for(svc).empty() && !infra_reachable(svc, t)) {
      out.push_back({deployment_->primary_node_for(svc),
                     "tcp:" + std::string(to_string(svc)), t});
    }
  }
  return out;
}

std::vector<SoftwareFailure> DependencyWatcher::failures_in(
    util::SimTime from, util::SimTime to, util::SimDuration period) const {
  std::vector<SoftwareFailure> out;
  std::set<std::pair<std::uint8_t, std::string>> seen;
  for (util::SimTime t = from; t < to; t += period) {
    for (auto& f : failures_at(t)) {
      if (seen.emplace(f.node.value(), f.dependency).second)
        out.push_back(std::move(f));
    }
  }
  return out;
}

bool DependencyWatcher::infra_reachable(wire::ServiceKind service,
                                        util::SimTime t) const {
  const char* daemon = infra_daemon(service);
  if (!daemon) return true;
  for (auto id : deployment_->nodes_for(service)) {
    if (deployment_->node(id).software_running(daemon, t)) return true;
  }
  return false;
}

}  // namespace gretel::monitor
