// Metrics storage and the collectd-analog resource monitor (§5.1, §6).
//
// "The resource monitoring agents periodically poll the host nodes for CPU,
// memory, network throughput, storage, and disk read/write behavior."
// ResourceMonitor samples every node's ground-truth NodeState on the
// configured period (1 s in the paper's setup) into a MetricsStore, which
// the root-cause engine later queries over the fault window.  Each series
// carries a freshness watermark (the time of its newest sample) so
// Is_Anomalous can distinguish "probed and normal" from "stale/unknown"
// when a stream freezes or an agent dies.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "monitor/probe.h"
#include "net/node.h"
#include "stack/deployment.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/time.h"
#include "wire/endpoint.h"

namespace gretel::monitor {

// One flat snapshot of the analyzer's degraded-telemetry counters, suitable
// for export to an operator dashboard.  Assembled by Analyzer::health();
// exact totals require a quiescent pipeline (after finish()).
struct PipelineHealthCounters {
  // Capture tap.
  std::uint64_t frames_decoded = 0;
  std::uint64_t frames_quarantined = 0;     // malformed (decode failures)
  std::uint64_t frames_unknown_api = 0;
  std::uint64_t frames_non_monotonic = 0;
  // Detection pipeline.
  std::uint64_t losses_recorded = 0;        // quarantines + overflow drops
  std::uint64_t overflow_drops = 0;
  std::uint64_t watchdog_trips = 0;
  std::uint64_t orphans_reaped = 0;
  std::uint64_t latency_clamped = 0;        // negative gaps clamped to 0
  std::uint64_t latency_rejected = 0;       // non-finite samples rejected
  std::uint64_t stale_freezes = 0;
  std::uint64_t degraded_reports = 0;
  // Streaming bounds (zero in batch mode, where the caps stay unset).
  std::uint64_t inflight_evicted = 0;       // pending requests evicted by cap
  std::uint64_t series_trimmed = 0;         // retained samples trimmed by cap
  // Per-shard liveness (sharded pipeline only; empty when serial).  Age in
  // wall milliseconds since each shard last made progress — consumed
  // events, or was seen with an empty ring.  stalled_shards counts shards
  // currently flagged by the steady-state watchdog.
  std::vector<double> shard_progress_age_ms;
  std::uint64_t stalled_shards = 0;
  // Monitoring plane (probed watchers; all zero under the oracle substrate).
  std::uint64_t probe_attempts = 0;
  std::uint64_t probe_retries = 0;
  std::uint64_t probe_timeouts = 0;
  std::uint64_t probe_drops = 0;
  std::uint64_t breaker_trips = 0;
  std::uint64_t breaker_skips = 0;
  std::uint64_t flap_suppressed = 0;
  std::uint64_t probe_budget_exhausted = 0;
  std::uint64_t stale_series = 0;           // stale/missing metric series hit
  // Resource sampling (filled by the ResourceMonitor owner; the analyzer
  // does not own the sampling loop).
  std::uint64_t frozen_samples = 0;

  std::string to_json() const;
};

class MetricsStore {
 public:
  void record(wire::NodeId node, net::ResourceKind kind, double t_seconds,
              double value);

  // Null when the (node, resource) pair was never sampled.
  const util::TimeSeries* series(wire::NodeId node,
                                 net::ResourceKind kind) const;

  // Freshness watermark: the newest sample time of the series, or empty
  // when the pair was never sampled.  A watermark lagging the queried
  // window means the stream froze or its agent died — evidence is Stale,
  // not "normal".
  std::optional<double> watermark_s(wire::NodeId node,
                                    net::ResourceKind kind) const;

  // Streaming retention (0 = keep everything, the batch default): when
  // set, each record() trims samples older than (newest − horizon) from
  // that series' front, amortized O(1) per sample.  Must comfortably
  // exceed the RCA window pad or Is_Anomalous loses baseline context.
  void set_retention_seconds(double horizon_s) { retention_s_ = horizon_s; }

  std::size_t total_samples() const { return total_samples_; }
  // Points currently held (≤ total_samples once retention trims).
  std::size_t retained_points() const;
  void clear();

 private:
  static std::uint32_t key(wire::NodeId node, net::ResourceKind kind) {
    return (std::uint32_t{node.value()} << 8) |
           static_cast<std::uint32_t>(kind);
  }

  std::unordered_map<std::uint32_t, util::TimeSeries> series_;
  std::size_t total_samples_ = 0;
  double retention_s_ = 0.0;
};

class ResourceMonitor {
 public:
  ResourceMonitor(const stack::Deployment* deployment,
                  util::SimDuration period, std::uint64_t seed);
  // Chaos-degradable variant: frozen metric streams and crashed agents
  // silently lose samples (audited by the injector).  Zero rates sample
  // identically to the plain monitor — the chaos draws are stateless and
  // never perturb the sampling RNG.
  ResourceMonitor(const stack::Deployment* deployment,
                  util::SimDuration period, std::uint64_t seed,
                  MonitorChaosConfig chaos);

  // Polls all nodes at the configured period over [from, to) into `store`.
  void sample_range(util::SimTime from, util::SimTime to,
                    MetricsStore& store);

  // Streaming variant: each sample goes to `sink` instead (e.g. the
  // analyzer's on_metric entry point, which also runs online LS).
  using Sink = std::function<void(wire::NodeId, net::ResourceKind,
                                  double t_seconds, double value)>;
  void sample_range(util::SimTime from, util::SimTime to, const Sink& sink);

  util::SimDuration period() const { return period_; }
  std::uint64_t frozen_samples() const { return frozen_samples_; }
  const MonitorChaos* chaos() const { return chaos_ ? &*chaos_ : nullptr; }

 private:
  const stack::Deployment* deployment_;
  util::SimDuration period_;
  util::Rng rng_;
  std::optional<MonitorChaos> chaos_;
  std::uint64_t frozen_samples_ = 0;
};

}  // namespace gretel::monitor
