#include "monitor/resource_stream.h"

#include <algorithm>

#include "detect/level_shift.h"
#include "util/binio.h"

namespace gretel::monitor {

ResourceAnomalyStream::ResourceAnomalyStream(Factory factory)
    : factory_(std::move(factory)) {}

ResourceAnomalyStream::ResourceAnomalyStream()
    : ResourceAnomalyStream([] { return detect::make_level_shift(); }) {}

std::optional<ResourceAlarm> ResourceAnomalyStream::observe(
    wire::NodeId node, net::ResourceKind kind, double t_seconds,
    double value) {
  auto& detector = detectors_[key(node, kind)];
  if (!detector) detector = factory_();
  ++samples_;
  const auto alarm = detector->observe(t_seconds, value);
  if (!alarm) return std::nullopt;
  ResourceAlarm out{node, kind, *alarm};
  alarms_.push_back(out);
  return out;
}

void ResourceAnomalyStream::save_state(std::string& out) const {
  std::vector<std::uint32_t> keys;
  keys.reserve(detectors_.size());
  for (const auto& [k, det] : detectors_) keys.push_back(k);
  std::sort(keys.begin(), keys.end());
  util::put_u32(out, static_cast<std::uint32_t>(keys.size()));
  for (std::uint32_t k : keys) {
    const auto& det = detectors_.at(k);
    util::put_u32(out, k);
    util::put_bytes(out, det->name());
    std::string blob;
    det->save_state(blob);
    util::put_bytes(out, blob);
  }
  util::put_u32(out, static_cast<std::uint32_t>(alarms_.size()));
  for (const ResourceAlarm& a : alarms_) {
    util::put_u8(out, a.node.value());
    util::put_u8(out, static_cast<std::uint8_t>(a.kind));
    util::put_f64(out, a.alarm.t_seconds);
    util::put_f64(out, a.alarm.value);
    util::put_f64(out, a.alarm.baseline);
    util::put_f64(out, a.alarm.magnitude);
    util::put_u8(out, a.alarm.direction == detect::ShiftDirection::Up ? 0
                                                                      : 1);
  }
  util::put_u64(out, samples_);
}

bool ResourceAnomalyStream::load_state(std::string_view& in) {
  const auto reset_all = [this] {
    detectors_.clear();
    alarms_.clear();
    samples_ = 0;
  };
  reset_all();
  constexpr std::uint32_t kMaxElems = 1u << 24;

  std::uint32_t n_det = 0;
  if (!util::get_u32(in, n_det) || n_det > kMaxElems) return false;
  for (std::uint32_t i = 0; i < n_det; ++i) {
    std::uint32_t k = 0;
    std::string_view name;
    std::string_view blob;
    if (!util::get_u32(in, k) || !util::get_bytes(in, name) ||
        !util::get_bytes(in, blob)) {
      reset_all();
      return false;
    }
    auto det = factory_();
    if (det->name() != name || !det->load_state(blob) || !blob.empty()) {
      reset_all();
      return false;
    }
    detectors_.emplace(k, std::move(det));
  }

  std::uint32_t n_alarms = 0;
  if (!util::get_u32(in, n_alarms) || n_alarms > kMaxElems) {
    reset_all();
    return false;
  }
  for (std::uint32_t i = 0; i < n_alarms; ++i) {
    std::uint8_t node = 0;
    std::uint8_t kind = 0;
    std::uint8_t dir = 0;
    ResourceAlarm a;
    if (!util::get_u8(in, node) || !util::get_u8(in, kind) ||
        !util::get_f64(in, a.alarm.t_seconds) ||
        !util::get_f64(in, a.alarm.value) ||
        !util::get_f64(in, a.alarm.baseline) ||
        !util::get_f64(in, a.alarm.magnitude) || !util::get_u8(in, dir)) {
      reset_all();
      return false;
    }
    a.node = wire::NodeId(node);
    a.kind = static_cast<net::ResourceKind>(kind);
    a.alarm.direction = dir == 0 ? detect::ShiftDirection::Up
                                 : detect::ShiftDirection::Down;
    alarms_.push_back(a);
  }

  std::uint64_t samples = 0;
  if (!util::get_u64(in, samples)) {
    reset_all();
    return false;
  }
  samples_ = static_cast<std::size_t>(samples);
  return true;
}

std::vector<ResourceAlarm> ResourceAnomalyStream::alarms_for(
    wire::NodeId node, double from_s, double to_s) const {
  std::vector<ResourceAlarm> out;
  for (const auto& a : alarms_) {
    if (a.node == node && a.alarm.t_seconds >= from_s &&
        a.alarm.t_seconds < to_s) {
      out.push_back(a);
    }
  }
  return out;
}

}  // namespace gretel::monitor
