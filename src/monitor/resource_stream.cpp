#include "monitor/resource_stream.h"

#include "detect/level_shift.h"

namespace gretel::monitor {

ResourceAnomalyStream::ResourceAnomalyStream(Factory factory)
    : factory_(std::move(factory)) {}

ResourceAnomalyStream::ResourceAnomalyStream()
    : ResourceAnomalyStream([] { return detect::make_level_shift(); }) {}

std::optional<ResourceAlarm> ResourceAnomalyStream::observe(
    wire::NodeId node, net::ResourceKind kind, double t_seconds,
    double value) {
  auto& detector = detectors_[key(node, kind)];
  if (!detector) detector = factory_();
  ++samples_;
  const auto alarm = detector->observe(t_seconds, value);
  if (!alarm) return std::nullopt;
  ResourceAlarm out{node, kind, *alarm};
  alarms_.push_back(out);
  return out;
}

std::vector<ResourceAlarm> ResourceAnomalyStream::alarms_for(
    wire::NodeId node, double from_s, double to_s) const {
  std::vector<ResourceAlarm> out;
  for (const auto& a : alarms_) {
    if (a.node == node && a.alarm.t_seconds >= from_s &&
        a.alarm.t_seconds < to_s) {
      out.push_back(a);
    }
  }
  return out;
}

}  // namespace gretel::monitor
