// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the integrity
// check shared by every on-disk format that must detect torn writes and
// bit rot: the GRTFDB02 fingerprint database, the GRTCKP01 checkpoint
// sections, and the report-journal records (src/persist/).
//
// Table-driven, one table generated at compile time.  The incremental form
// (seed in, crc out) lets callers checksum a file in chunks; the one-shot
// overload covers the common whole-buffer case.  Matches zlib's crc32()
// bit-for-bit, so external tooling can verify the files.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace gretel::util {

namespace detail {

constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32Table =
    make_crc32_table();

}  // namespace detail

// Incremental update: feed chunks in order, threading the returned value
// back in as `crc`.  Start from 0.
constexpr std::uint32_t crc32_update(std::uint32_t crc,
                                     std::string_view data) {
  std::uint32_t c = crc ^ 0xFFFFFFFFu;
  for (char ch : data) {
    c = detail::kCrc32Table[(c ^ static_cast<std::uint8_t>(ch)) & 0xFFu] ^
        (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

// One-shot checksum of a whole buffer.
constexpr std::uint32_t crc32(std::string_view data) {
  return crc32_update(0, data);
}

}  // namespace gretel::util
