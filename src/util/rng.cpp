#include "util/rng.h"

#include <algorithm>

namespace gretel::util {

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  if (k >= n) {
    std::vector<std::size_t> all(n);
    for (std::size_t i = 0; i < n; ++i) all[i] = i;
    return all;
  }
  // Floyd's algorithm: k distinct values without building the full range.
  std::vector<std::size_t> out;
  out.reserve(k);
  for (std::size_t j = n - k; j < n; ++j) {
    std::size_t t = next_below(j + 1);
    if (std::find(out.begin(), out.end(), t) != out.end()) t = j;
    out.push_back(t);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace gretel::util
