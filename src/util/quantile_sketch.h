// Constant-memory quantile estimation for streaming mode.
//
// Batch mode keeps every latency sample per API (util::TimeSeries) because
// replays are finite and the figures want exact CDFs.  A continuously
// running stream cannot: per-API state must be O(1) in the number of
// samples.  P2Quantile implements the P² algorithm (Jain & Chlamtac,
// CACM 1985): five markers per tracked quantile, updated with a parabolic
// (falling back to linear) interpolation step per observation.  No buffers,
// no resampling, ~120 bytes per quantile.
//
// Accuracy contract: P² is an estimator, not an exact summary.  The bound
// we pin in tests/util/quantile_sketch_test.cpp is a *rank* bound — on the
// adversarial distributions exercised there (sorted ascending/descending,
// heavy-tail, shuffled uniform; n = 20 000) the estimate for quantile q
// always falls between the exact empirical quantiles at q ± 0.05.  Tight
// multi-modal mixtures are the weak spot: a marker fractionally off a
// narrow density spike is a large rank step, so the bimodal case is
// pinned at q ± 0.15 instead.  These bounds are empirical (P² has no
// worst-case guarantee) but deterministic for the seeded inputs, so any
// regression in the update rule trips the test.  Constant series are
// exact; so is any series with fewer than five observations (the sketch
// keeps them verbatim until the markers initialize).
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/binio.h"

namespace gretel::util {

// One P² state machine tracking a single quantile q in (0, 1).
class P2Quantile {
 public:
  explicit P2Quantile(double q) : q_(q) {}

  void add(double x) {
    if (n_ < 5) {
      height_[n_++] = x;
      if (n_ == 5) {
        std::sort(height_.begin(), height_.end());
        for (int i = 0; i < 5; ++i) pos_[i] = i + 1;
        desired_[0] = 1.0;
        desired_[1] = 1.0 + 2.0 * q_;
        desired_[2] = 1.0 + 4.0 * q_;
        desired_[3] = 3.0 + 2.0 * q_;
        desired_[4] = 5.0;
      }
      return;
    }

    // Find the cell k such that height_[k] <= x < height_[k+1], extending
    // the extreme markers when x falls outside the current range.
    int k;
    if (x < height_[0]) {
      height_[0] = x;
      k = 0;
    } else if (x >= height_[4]) {
      height_[4] = x;
      k = 3;
    } else {
      k = 0;
      while (k < 3 && x >= height_[k + 1]) ++k;
    }

    for (int i = k + 1; i < 5; ++i) ++pos_[i];
    desired_[1] += q_ / 2.0;
    desired_[2] += q_;
    desired_[3] += (1.0 + q_) / 2.0;
    ++n_;

    // Adjust the three interior markers toward their desired positions.
    for (int i = 1; i <= 3; ++i) {
      const double d = desired_[i] - pos_[i];
      const double gap_up = pos_[i + 1] - pos_[i];
      const double gap_dn = pos_[i - 1] - pos_[i];
      if ((d >= 1.0 && gap_up > 1.0) || (d <= -1.0 && gap_dn < -1.0)) {
        const double s = d >= 0.0 ? 1.0 : -1.0;
        const double candidate = parabolic(i, s);
        if (height_[i - 1] < candidate && candidate < height_[i + 1]) {
          height_[i] = candidate;
        } else {
          height_[i] = linear(i, s);
        }
        pos_[i] += s;
      }
    }
  }

  // Current estimate.  Exact for n <= 5 (the buffered observations are
  // interpolated the same way util::quantile does it).
  double value() const {
    if (n_ == 0) return 0.0;
    if (n_ < 5) {
      std::array<double, 5> sorted = height_;
      std::sort(sorted.begin(), sorted.begin() + n_);
      const double rank = q_ * static_cast<double>(n_ - 1);
      const auto lo = static_cast<std::size_t>(rank);
      const std::size_t hi = std::min<std::size_t>(lo + 1, n_ - 1);
      const double frac = rank - static_cast<double>(lo);
      return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
    }
    return height_[2];
  }

  double q() const { return q_; }
  std::uint64_t count() const { return n_; }

  // Checkpoint support: the full marker state travels as raw IEEE-754 bit
  // patterns (util/binio.h), so a restored estimator continues the P²
  // recurrence bit-identically — same markers, same future estimates.
  void save_state(std::string& out) const {
    put_f64(out, q_);
    put_u64(out, n_);
    for (double v : height_) put_f64(out, v);
    for (double v : pos_) put_f64(out, v);
    for (double v : desired_) put_f64(out, v);
  }

  bool load_state(std::string_view& in) {
    double q = 0.0;
    std::uint64_t n = 0;
    std::array<double, 5> h{};
    std::array<double, 5> p{};
    std::array<double, 5> d{};
    if (!get_f64(in, q) || !get_u64(in, n)) return false;
    for (double& v : h)
      if (!get_f64(in, v)) return false;
    for (double& v : p)
      if (!get_f64(in, v)) return false;
    for (double& v : d)
      if (!get_f64(in, v)) return false;
    // The tracked quantile is part of the estimator's identity, fixed at
    // construction; state saved for a different q is a wiring bug upstream.
    if (q != q_) return false;
    n_ = n;
    height_ = h;
    pos_ = p;
    desired_ = d;
    return true;
  }

 private:
  double parabolic(int i, double s) const {
    const double np = pos_[i + 1];
    const double nc = pos_[i];
    const double nm = pos_[i - 1];
    return height_[i] +
           s / (np - nm) *
               ((nc - nm + s) * (height_[i + 1] - height_[i]) / (np - nc) +
                (np - nc - s) * (height_[i] - height_[i - 1]) / (nc - nm));
  }

  double linear(int i, double s) const {
    const int j = i + static_cast<int>(s);
    return height_[i] +
           s * (height_[j] - height_[i]) / (pos_[j] - pos_[i]);
  }

  double q_;
  std::uint64_t n_ = 0;
  std::array<double, 5> height_{};  // marker heights (first 5: raw buffer)
  std::array<double, 5> pos_{};     // marker positions (1-based)
  std::array<double, 5> desired_{};
};

// The per-API baseline summary streaming mode keeps instead of a retained
// TimeSeries: min / max / count / mean plus P² estimators for the fixed
// quantile set {0.5, 0.9, 0.95, 0.99}.  Fixed size, no allocation.
class QuantileSketch {
 public:
  static constexpr std::array<double, 4> kQuantiles{0.5, 0.9, 0.95, 0.99};

  QuantileSketch()
      : estimators_{P2Quantile(kQuantiles[0]), P2Quantile(kQuantiles[1]),
                    P2Quantile(kQuantiles[2]), P2Quantile(kQuantiles[3])} {}

  void add(double x) {
    if (!std::isfinite(x)) return;
    if (n_ == 0) {
      min_ = max_ = x;
    } else {
      min_ = std::min(min_, x);
      max_ = std::max(max_, x);
    }
    ++n_;
    sum_ += x;
    for (auto& e : estimators_) e.add(x);
  }

  std::uint64_t count() const { return n_; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }

  // Estimate for one of the fixed kQuantiles (nearest tracked target is
  // returned for other q, which is adequate for report annotation).
  double quantile(double q) const {
    std::size_t best = 0;
    double best_gap = std::abs(kQuantiles[0] - q);
    for (std::size_t i = 1; i < kQuantiles.size(); ++i) {
      const double gap = std::abs(kQuantiles[i] - q);
      if (gap < best_gap) {
        best_gap = gap;
        best = i;
      }
    }
    return estimators_[best].value();
  }

  double p50() const { return estimators_[0].value(); }
  double p90() const { return estimators_[1].value(); }
  double p95() const { return estimators_[2].value(); }
  double p99() const { return estimators_[3].value(); }

  // The whole point: state size is a compile-time constant.
  static constexpr std::size_t bytes() { return sizeof(QuantileSketch); }

  // Checkpoint support: full state, bit-exact round trip (see P2Quantile).
  void save_state(std::string& out) const {
    put_u64(out, n_);
    put_f64(out, min_);
    put_f64(out, max_);
    put_f64(out, sum_);
    for (const auto& e : estimators_) e.save_state(out);
  }

  bool load_state(std::string_view& in) {
    QuantileSketch fresh;
    if (!get_u64(in, fresh.n_) || !get_f64(in, fresh.min_) ||
        !get_f64(in, fresh.max_) || !get_f64(in, fresh.sum_)) {
      return false;
    }
    for (auto& e : fresh.estimators_)
      if (!e.load_state(in)) return false;
    *this = fresh;
    return true;
  }

 private:
  std::uint64_t n_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
  std::array<P2Quantile, 4> estimators_;
};

}  // namespace gretel::util
