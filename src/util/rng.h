// Deterministic pseudo-random number generation for workload synthesis.
//
// All randomness in the reproduction flows through Rng so that every
// experiment is reproducible from a single seed.  The core generator is
// xoshiro256** seeded via splitmix64, which is fast and has no measurable
// bias for the sizes we draw.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <span>
#include <vector>

namespace gretel::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // splitmix64 expansion of the seed into the 256-bit state.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      s = z ^ (z >> 31);
    }
  }

  // Raw 64 random bits (xoshiro256**).
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound).  bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    // Debiased multiply-shift (Lemire).
    unsigned __int128 m =
        static_cast<unsigned __int128>(next_u64()) * bound;
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  // Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  // Bernoulli draw.
  bool chance(double p) { return next_double() < p; }

  // Approximately normal draw via the sum of uniforms (Irwin–Hall); adequate
  // for latency jitter where precise tails do not matter.
  double next_gaussian(double mean, double stddev) {
    double s = 0.0;
    for (int i = 0; i < 12; ++i) s += next_double();
    return mean + (s - 6.0) * stddev;
  }

  // Exponential draw with the given mean (> 0).
  double next_exponential(double mean) {
    double u = next_double();
    if (u <= 0.0) u = 1e-12;
    return -mean * std::log(u);
  }

  // Picks an index according to non-negative weights.  An all-zero weight
  // vector picks index 0.
  std::size_t pick_weighted(std::span<const double> weights) {
    double total = std::accumulate(weights.begin(), weights.end(), 0.0);
    if (total <= 0.0) return 0;
    double r = next_double() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      r -= weights[i];
      if (r <= 0.0) return i;
    }
    return weights.size() - 1;
  }

  // Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = next_below(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  // Samples k distinct indices from [0, n) in increasing order.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

  // Derives an independent child generator; convenient for giving each
  // operation instance its own stream.
  Rng fork() { return Rng(next_u64()); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace gretel::util
