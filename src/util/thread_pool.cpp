#include "util/thread_pool.h"

namespace gretel::util {

ThreadPool::ThreadPool(std::size_t num_threads) {
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  job_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::work_on_job(const std::function<void(std::size_t)>& fn,
                             std::size_t n) {
  for (;;) {
    const auto i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) return;
    fn(i);
    if (done_.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
      std::lock_guard<std::mutex> lock(mutex_);
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t n = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      job_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      fn = fn_;
      n = n_;
    }
    work_on_job(*fn, n);
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (workers_.empty() || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    fn_ = &fn;
    n_ = n;
    next_.store(0, std::memory_order_relaxed);
    done_.store(0, std::memory_order_relaxed);
    ++generation_;
  }
  job_cv_.notify_all();
  work_on_job(fn, n);
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] {
    return done_.load(std::memory_order_acquire) == n_;
  });
  fn_ = nullptr;
}

}  // namespace gretel::util
