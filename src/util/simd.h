// Vectorized match/scan kernels for the analysis hot loops.
//
// The analysis-side inner loops — the Alg. 2 subsequence matcher, the
// error-flag scan over frozen context windows, and fingerprint truncation —
// are all "find the next/last element equal to X" or "find the next set
// flag" over small dense arrays (ApiId symbols are uint16, error flags are
// uint8).  This header provides those primitives as SIMD kernels with a
// scalar reference implementation that is *the* semantic contract: every
// vector path must return bit-identical results to its `scalar::` twin
// (property-tested across widths 0..130 in tests/util/simd_test.cpp), so
// detector output is byte-identical whichever kernel family is compiled in.
//
// Kernel family selection is compile-time:
//   GRETEL_FORCE_SCALAR  — escape hatch (also a CMake option): everything
//                          aliases the scalar reference.
//   __AVX2__             — 16×u16 / 32×u8 lanes (enabled automatically by
//                          the build when the host CPU supports it).
//   __SSE2__ / x86_64    — 8×u16 / 16×u8 lanes (x86-64 baseline).
//   __ARM_NEON           — 8×u16 / 16×u8 lanes.
//   otherwise            — scalar fallback.
//
// A *runtime* escape hatch (set_force_scalar) additionally lets one process
// run both families for in-process A/B determinism tests and the
// scalar-baseline microbenchmarks; it routes the public entry points to the
// scalar twins without rebuilding.  All loads are unaligned (loadu); no
// kernel reads past `data + n`.
#pragma once

#include <cstddef>
#include <cstdint>

#if !defined(GRETEL_FORCE_SCALAR)
#if defined(__AVX2__)
#include <immintrin.h>
#define GRETEL_SIMD_AVX2 1
#elif defined(__SSE2__) || defined(_M_X64) || \
    (defined(_M_IX86_FP) && _M_IX86_FP >= 2)
#include <emmintrin.h>
#define GRETEL_SIMD_SSE2 1
#elif defined(__ARM_NEON)
#include <arm_neon.h>
#define GRETEL_SIMD_NEON 1
#endif
#endif

#if defined(GRETEL_SIMD_AVX2) || defined(GRETEL_SIMD_SSE2) || \
    defined(GRETEL_SIMD_NEON)
#define GRETEL_SIMD_VECTOR 1
#include <bit>
#endif

namespace gretel::simd {

inline constexpr std::size_t npos = static_cast<std::size_t>(-1);

namespace detail {
inline bool g_force_scalar = false;
}  // namespace detail

// Runtime escape hatch: route every public kernel to its scalar reference.
// Single-threaded toggle (flip only while the analysis pipeline is
// quiescent); used by the determinism tests and the scalar-baseline bench.
inline void set_force_scalar(bool v) { detail::g_force_scalar = v; }

inline bool force_scalar() {
#if defined(GRETEL_FORCE_SCALAR)
  return true;
#else
  return detail::g_force_scalar;
#endif
}

// Kernel family compiled into this binary.
inline const char* compiled_kernel() {
#if defined(GRETEL_SIMD_AVX2)
  return "avx2";
#elif defined(GRETEL_SIMD_SSE2)
  return "sse2";
#elif defined(GRETEL_SIMD_NEON)
  return "neon";
#else
  return "scalar";
#endif
}

// Kernel family the public entry points currently dispatch to.
inline const char* active_kernel() {
  return force_scalar() ? "scalar" : compiled_kernel();
}

// ---------------------------------------------------------------------------
// Scalar reference implementations — the semantic contract.
// ---------------------------------------------------------------------------
namespace scalar {

inline std::size_t find_first_eq_u16(const std::uint16_t* data, std::size_t n,
                                     std::uint16_t v) {
  for (std::size_t i = 0; i < n; ++i) {
    if (data[i] == v) return i;
  }
  return npos;
}

inline std::size_t find_last_eq_u16(const std::uint16_t* data, std::size_t n,
                                    std::uint16_t v) {
  for (std::size_t i = n; i-- > 0;) {
    if (data[i] == v) return i;
  }
  return npos;
}

inline std::size_t find_first_set_u8(const std::uint8_t* flags,
                                     std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (flags[i]) return i;
  }
  return npos;
}

inline std::size_t find_last_set_u8(const std::uint8_t* flags, std::size_t n) {
  for (std::size_t i = n; i-- > 0;) {
    if (flags[i]) return i;
  }
  return npos;
}

inline std::size_t count_set_u8(const std::uint8_t* flags, std::size_t n) {
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) count += flags[i] ? 1 : 0;
  return count;
}

}  // namespace scalar

// ---------------------------------------------------------------------------
// Vector implementations.  Each mirrors its scalar twin exactly; the public
// dispatchers below pick vector vs scalar.
// ---------------------------------------------------------------------------
#if defined(GRETEL_SIMD_AVX2)
namespace vec {

inline std::size_t find_first_eq_u16(const std::uint16_t* data, std::size_t n,
                                     std::uint16_t v) {
  const __m256i needle = _mm256_set1_epi16(static_cast<short>(v));
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256i chunk =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i));
    const auto mask = static_cast<std::uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi16(chunk, needle)));
    if (mask) return i + static_cast<std::size_t>(std::countr_zero(mask)) / 2;
  }
  for (; i < n; ++i) {
    if (data[i] == v) return i;
  }
  return npos;
}

inline std::size_t find_last_eq_u16(const std::uint16_t* data, std::size_t n,
                                    std::uint16_t v) {
  const __m256i needle = _mm256_set1_epi16(static_cast<short>(v));
  std::size_t i = n;
  while (i >= 16) {
    i -= 16;
    const __m256i chunk =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i));
    const auto mask = static_cast<std::uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi16(chunk, needle)));
    if (mask) {
      return i + (31 - static_cast<std::size_t>(std::countl_zero(mask))) / 2;
    }
  }
  while (i-- > 0) {
    if (data[i] == v) return i;
  }
  return npos;
}

inline std::size_t find_first_set_u8(const std::uint8_t* flags,
                                     std::size_t n) {
  const __m256i zero = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i chunk =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(flags + i));
    const auto mask = ~static_cast<std::uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(chunk, zero)));
    if (mask) return i + static_cast<std::size_t>(std::countr_zero(mask));
  }
  for (; i < n; ++i) {
    if (flags[i]) return i;
  }
  return npos;
}

inline std::size_t find_last_set_u8(const std::uint8_t* flags, std::size_t n) {
  const __m256i zero = _mm256_setzero_si256();
  std::size_t i = n;
  while (i >= 32) {
    i -= 32;
    const __m256i chunk =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(flags + i));
    const auto mask = ~static_cast<std::uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(chunk, zero)));
    if (mask) {
      return i + 31 - static_cast<std::size_t>(std::countl_zero(mask));
    }
  }
  while (i-- > 0) {
    if (flags[i]) return i;
  }
  return npos;
}

inline std::size_t count_set_u8(const std::uint8_t* flags, std::size_t n) {
  const __m256i zero = _mm256_setzero_si256();
  std::size_t count = 0;
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i chunk =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(flags + i));
    const auto mask = ~static_cast<std::uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(chunk, zero)));
    count += static_cast<std::size_t>(std::popcount(mask));
  }
  for (; i < n; ++i) count += flags[i] ? 1 : 0;
  return count;
}

}  // namespace vec

#elif defined(GRETEL_SIMD_SSE2)
namespace vec {

inline std::size_t find_first_eq_u16(const std::uint16_t* data, std::size_t n,
                                     std::uint16_t v) {
  const __m128i needle = _mm_set1_epi16(static_cast<short>(v));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i chunk =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + i));
    const auto mask = static_cast<std::uint32_t>(
        _mm_movemask_epi8(_mm_cmpeq_epi16(chunk, needle)));
    if (mask) return i + static_cast<std::size_t>(std::countr_zero(mask)) / 2;
  }
  for (; i < n; ++i) {
    if (data[i] == v) return i;
  }
  return npos;
}

inline std::size_t find_last_eq_u16(const std::uint16_t* data, std::size_t n,
                                    std::uint16_t v) {
  const __m128i needle = _mm_set1_epi16(static_cast<short>(v));
  std::size_t i = n;
  while (i >= 8) {
    i -= 8;
    const __m128i chunk =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + i));
    const auto mask = static_cast<std::uint32_t>(
        _mm_movemask_epi8(_mm_cmpeq_epi16(chunk, needle)));
    if (mask) {
      return i + (31 - static_cast<std::size_t>(std::countl_zero(mask))) / 2;
    }
  }
  while (i-- > 0) {
    if (data[i] == v) return i;
  }
  return npos;
}

inline std::size_t find_first_set_u8(const std::uint8_t* flags,
                                     std::size_t n) {
  const __m128i zero = _mm_setzero_si128();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i chunk =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(flags + i));
    const auto mask =
        0xFFFFu &
        ~static_cast<std::uint32_t>(
            _mm_movemask_epi8(_mm_cmpeq_epi8(chunk, zero)));
    if (mask) return i + static_cast<std::size_t>(std::countr_zero(mask));
  }
  for (; i < n; ++i) {
    if (flags[i]) return i;
  }
  return npos;
}

inline std::size_t find_last_set_u8(const std::uint8_t* flags, std::size_t n) {
  const __m128i zero = _mm_setzero_si128();
  std::size_t i = n;
  while (i >= 16) {
    i -= 16;
    const __m128i chunk =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(flags + i));
    const auto mask =
        0xFFFFu &
        ~static_cast<std::uint32_t>(
            _mm_movemask_epi8(_mm_cmpeq_epi8(chunk, zero)));
    if (mask) {
      return i + 31 - static_cast<std::size_t>(std::countl_zero(mask));
    }
  }
  while (i-- > 0) {
    if (flags[i]) return i;
  }
  return npos;
}

inline std::size_t count_set_u8(const std::uint8_t* flags, std::size_t n) {
  const __m128i zero = _mm_setzero_si128();
  std::size_t count = 0;
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i chunk =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(flags + i));
    const auto mask =
        0xFFFFu &
        ~static_cast<std::uint32_t>(
            _mm_movemask_epi8(_mm_cmpeq_epi8(chunk, zero)));
    count += static_cast<std::size_t>(std::popcount(mask));
  }
  for (; i < n; ++i) count += flags[i] ? 1 : 0;
  return count;
}

}  // namespace vec

#elif defined(GRETEL_SIMD_NEON)
namespace vec {

// NEON has no movemask; vshrn on the 16-bit lanes packs each lane's
// comparison result into a nibble of a 64-bit scalar (4 bits per u16 lane,
// 4 bits per u8 lane after the shift-right-narrow), which countr/countl
// then treat exactly like an x86 movemask with 4 bits per lane.
inline std::uint64_t nibble_mask_u16(uint16x8_t eq) {
  const uint8x8_t narrowed = vshrn_n_u16(eq, 4);
  return vget_lane_u64(vreinterpret_u64_u8(narrowed), 0);
}

inline std::uint64_t nibble_mask_u8(uint8x16_t eq) {
  const uint8x8_t narrowed = vshrn_n_u16(vreinterpretq_u16_u8(eq), 4);
  return vget_lane_u64(vreinterpret_u64_u8(narrowed), 0);
}

inline std::size_t find_first_eq_u16(const std::uint16_t* data, std::size_t n,
                                     std::uint16_t v) {
  const uint16x8_t needle = vdupq_n_u16(v);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const auto mask = nibble_mask_u16(vceqq_u16(vld1q_u16(data + i), needle));
    if (mask) {
      return i + static_cast<std::size_t>(std::countr_zero(mask)) / 8;
    }
  }
  for (; i < n; ++i) {
    if (data[i] == v) return i;
  }
  return npos;
}

inline std::size_t find_last_eq_u16(const std::uint16_t* data, std::size_t n,
                                    std::uint16_t v) {
  const uint16x8_t needle = vdupq_n_u16(v);
  std::size_t i = n;
  while (i >= 8) {
    i -= 8;
    const auto mask = nibble_mask_u16(vceqq_u16(vld1q_u16(data + i), needle));
    if (mask) {
      return i + (63 - static_cast<std::size_t>(std::countl_zero(mask))) / 8;
    }
  }
  while (i-- > 0) {
    if (data[i] == v) return i;
  }
  return npos;
}

inline std::size_t find_first_set_u8(const std::uint8_t* flags,
                                     std::size_t n) {
  const uint8x16_t zero = vdupq_n_u8(0);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const uint8x16_t nonzero =
        vmvnq_u8(vceqq_u8(vld1q_u8(flags + i), zero));
    const auto mask = nibble_mask_u8(nonzero);
    if (mask) {
      return i + static_cast<std::size_t>(std::countr_zero(mask)) / 4;
    }
  }
  for (; i < n; ++i) {
    if (flags[i]) return i;
  }
  return npos;
}

inline std::size_t find_last_set_u8(const std::uint8_t* flags, std::size_t n) {
  const uint8x16_t zero = vdupq_n_u8(0);
  std::size_t i = n;
  while (i >= 16) {
    i -= 16;
    const uint8x16_t nonzero =
        vmvnq_u8(vceqq_u8(vld1q_u8(flags + i), zero));
    const auto mask = nibble_mask_u8(nonzero);
    if (mask) {
      return i + (63 - static_cast<std::size_t>(std::countl_zero(mask))) / 4;
    }
  }
  while (i-- > 0) {
    if (flags[i]) return i;
  }
  return npos;
}

inline std::size_t count_set_u8(const std::uint8_t* flags, std::size_t n) {
  return scalar::count_set_u8(flags, n);
}

}  // namespace vec
#endif

// ---------------------------------------------------------------------------
// Public dispatchers.  Semantics (shared with the scalar:: twins):
//   find_first_eq_u16(data, n, v) — smallest i in [0, n) with data[i] == v.
//   find_last_eq_u16(data, n, v)  — largest such i.
//   find_first_set_u8(flags, n)   — smallest i in [0, n) with flags[i] != 0.
//   find_last_set_u8(flags, n)    — largest such i.
//   count_set_u8(flags, n)        — number of nonzero flags.
// All return npos when no element qualifies; n == 0 is valid.
// ---------------------------------------------------------------------------

inline std::size_t find_first_eq_u16(const std::uint16_t* data, std::size_t n,
                                     std::uint16_t v) {
#if defined(GRETEL_SIMD_VECTOR)
  if (!force_scalar()) return vec::find_first_eq_u16(data, n, v);
#endif
  return scalar::find_first_eq_u16(data, n, v);
}

inline std::size_t find_last_eq_u16(const std::uint16_t* data, std::size_t n,
                                    std::uint16_t v) {
#if defined(GRETEL_SIMD_VECTOR)
  if (!force_scalar()) return vec::find_last_eq_u16(data, n, v);
#endif
  return scalar::find_last_eq_u16(data, n, v);
}

inline std::size_t find_first_set_u8(const std::uint8_t* flags,
                                     std::size_t n) {
#if defined(GRETEL_SIMD_VECTOR)
  if (!force_scalar()) return vec::find_first_set_u8(flags, n);
#endif
  return scalar::find_first_set_u8(flags, n);
}

inline std::size_t find_last_set_u8(const std::uint8_t* flags, std::size_t n) {
#if defined(GRETEL_SIMD_VECTOR)
  if (!force_scalar()) return vec::find_last_set_u8(flags, n);
#endif
  return scalar::find_last_set_u8(flags, n);
}

inline std::size_t count_set_u8(const std::uint8_t* flags, std::size_t n) {
#if defined(GRETEL_SIMD_VECTOR)
  if (!force_scalar()) return vec::count_set_u8(flags, n);
#endif
  return scalar::count_set_u8(flags, n);
}

// ---------------------------------------------------------------------------
// 64-bit symbol-presence fingerprints.  Each u16 symbol hashes to one of 64
// buckets; a sequence's fingerprint is the OR of its symbols' bucket bits.
// If (a_mask & b_mask) == 0, the two sequences share no symbol; if
// (a_mask & ~b_mask) != 0, some symbol of `a` does not occur in `b`.  Both
// tests are conservative in the useful direction (hash collisions only make
// the filter admit extra candidates, never reject a real match), so Alg. 2
// can discard non-overlapping candidates with a single AND before any O(n)
// scan.
// ---------------------------------------------------------------------------

inline std::uint64_t presence_bit_u16(std::uint16_t v) {
  // Multiplicative hash into 64 buckets (Knuth's 2654435761).
  return 1ull << ((static_cast<std::uint32_t>(v) * 2654435761u) >> 26);
}

inline std::uint64_t presence_mask_u16(const std::uint16_t* data,
                                       std::size_t n) {
  std::uint64_t mask = 0;
  for (std::size_t i = 0; i < n; ++i) mask |= presence_bit_u16(data[i]);
  return mask;
}

}  // namespace gretel::simd
