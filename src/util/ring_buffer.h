// Fixed-capacity ring buffers.
//
// RingBuffer backs GRETEL's dual-buffer event receiver (§6 of the paper):
// events are appended at line rate and the anomaly detector freezes windows
// of the most recent α entries by index, without copying.  It is
// single-threaded by design.
//
// SpscRing is the concurrent sibling used by the sharded analysis pipeline:
// a bounded lock-free single-producer/single-consumer queue, one per
// detection shard, carrying events from the ingestion thread to the shard's
// worker.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace gretel::util {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity)
      : capacity_(capacity), data_(capacity) {
    assert(capacity > 0);
  }

  // Appends an element, overwriting the oldest if full.  Returns the
  // monotonically increasing global sequence number of the element.
  std::uint64_t push(T value) {
    data_[static_cast<std::size_t>(next_seq_ % capacity_)] = std::move(value);
    return next_seq_++;
  }

  // Oldest sequence number still resident.
  std::uint64_t first_seq() const {
    return next_seq_ > capacity_ ? next_seq_ - capacity_ : 0;
  }
  // One past the newest sequence number.
  std::uint64_t end_seq() const { return next_seq_; }

  bool contains(std::uint64_t seq) const {
    return seq >= first_seq() && seq < next_seq_;
  }

  // Element by global sequence number; the caller must check contains().
  const T& at(std::uint64_t seq) const {
    assert(contains(seq));
    return data_[static_cast<std::size_t>(seq % capacity_)];
  }

  // Mutable view of the most recently pushed element (the caller must have
  // pushed at least once).  Lets a caller push first and stamp in-ring
  // fields after, instead of copying the element just to mutate it.
  T& back() {
    assert(next_seq_ > 0);
    return data_[static_cast<std::size_t>((next_seq_ - 1) % capacity_)];
  }

  // Copies the residents of [from, to) into a vector (clamped to what is
  // still buffered).  This is the "freeze between two pointers" snapshot.
  std::vector<T> snapshot(std::uint64_t from, std::uint64_t to) const {
    if (from < first_seq()) from = first_seq();
    if (to > next_seq_) to = next_seq_;
    std::vector<T> out;
    if (from >= to) return out;
    out.reserve(static_cast<std::size_t>(to - from));
    for (std::uint64_t s = from; s < to; ++s) out.push_back(at(s));
    return out;
  }

  std::size_t size() const {
    return static_cast<std::size_t>(next_seq_ - first_seq());
  }
  std::size_t capacity() const { return capacity_; }
  bool empty() const { return next_seq_ == 0; }

 private:
  std::size_t capacity_;
  std::vector<T> data_;
  std::uint64_t next_seq_ = 0;
};

// Bounded wait-free single-producer/single-consumer queue.
//
// Exactly one thread may call try_push() and exactly one thread may call
// try_pop(); under that contract every operation is a handful of relaxed
// loads plus one acquire load and one release store.  Capacity is rounded
// up to a power of two so slot lookup is a mask.  empty() is safe from the
// consumer, full() from the producer; size() is an estimate from any
// thread.
template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t min_capacity) {
    std::size_t cap = 1;
    while (cap < min_capacity) cap <<= 1;
    mask_ = cap - 1;
    slots_.resize(cap);
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  // Producer side.  False when the ring is full.
  bool try_push(T value) {
    const auto tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ > mask_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ > mask_) return false;
    }
    slots_[static_cast<std::size_t>(tail) & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  // Producer side, bulk: pushes up to `n` items from `items` in order and
  // returns how many entered (0 when full).  The whole run is published
  // with a single release store, so a batch costs one cursor reload and
  // one fence-free publication instead of n.
  std::size_t try_push_n(const T* items, std::size_t n) {
    const auto tail = tail_.load(std::memory_order_relaxed);
    std::size_t free_slots =
        capacity() - static_cast<std::size_t>(tail - head_cache_);
    if (free_slots < n) {
      head_cache_ = head_.load(std::memory_order_acquire);
      free_slots = capacity() - static_cast<std::size_t>(tail - head_cache_);
    }
    const std::size_t k = n < free_slots ? n : free_slots;
    for (std::size_t i = 0; i < k; ++i) {
      slots_[static_cast<std::size_t>(tail + i) & mask_] = items[i];
    }
    if (k != 0) tail_.store(tail + k, std::memory_order_release);
    return k;
  }

  // Consumer side.  False when the ring is empty.
  bool try_pop(T& out) {
    const auto head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return false;
    }
    out = std::move(slots_[static_cast<std::size_t>(head) & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  // Consumer side, bulk: pops up to `n` items into `out` and returns how
  // many were taken.  Mirrors try_push_n: one cursor reload, one release
  // store for the whole run.
  std::size_t try_pop_n(T* out, std::size_t n) {
    const auto head = head_.load(std::memory_order_relaxed);
    std::size_t avail = static_cast<std::size_t>(tail_cache_ - head);
    if (avail < n) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      avail = static_cast<std::size_t>(tail_cache_ - head);
    }
    const std::size_t k = n < avail ? n : avail;
    for (std::size_t i = 0; i < k; ++i) {
      out[i] = std::move(slots_[static_cast<std::size_t>(head + i) & mask_]);
    }
    if (k != 0) head_.store(head + k, std::memory_order_release);
    return k;
  }

  // Consumer-side emptiness check (exact for the consumer: items can only
  // be added behind its back, never removed).
  bool empty() const {
    return head_.load(std::memory_order_relaxed) ==
           tail_.load(std::memory_order_acquire);
  }

  std::size_t size() const {
    return static_cast<std::size_t>(tail_.load(std::memory_order_acquire) -
                                    head_.load(std::memory_order_acquire));
  }
  std::size_t capacity() const { return mask_ + 1; }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  // Producer and consumer cursors on separate cache lines to avoid
  // ping-ponging the line between the two threads.
  alignas(64) std::atomic<std::uint64_t> tail_{0};  // next write position
  std::uint64_t head_cache_ = 0;                    // producer's view of head
  alignas(64) std::atomic<std::uint64_t> head_{0};  // next read position
  std::uint64_t tail_cache_ = 0;                    // consumer's view of tail
};

}  // namespace gretel::util
