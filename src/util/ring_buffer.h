// Fixed-capacity ring buffer.
//
// Backs GRETEL's dual-buffer event receiver (§6 of the paper): events are
// appended at line rate and the anomaly detector freezes windows of the most
// recent α entries by index, without copying.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace gretel::util {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity)
      : capacity_(capacity), data_(capacity) {
    assert(capacity > 0);
  }

  // Appends an element, overwriting the oldest if full.  Returns the
  // monotonically increasing global sequence number of the element.
  std::uint64_t push(T value) {
    data_[static_cast<std::size_t>(next_seq_ % capacity_)] = std::move(value);
    return next_seq_++;
  }

  // Oldest sequence number still resident.
  std::uint64_t first_seq() const {
    return next_seq_ > capacity_ ? next_seq_ - capacity_ : 0;
  }
  // One past the newest sequence number.
  std::uint64_t end_seq() const { return next_seq_; }

  bool contains(std::uint64_t seq) const {
    return seq >= first_seq() && seq < next_seq_;
  }

  // Element by global sequence number; the caller must check contains().
  const T& at(std::uint64_t seq) const {
    assert(contains(seq));
    return data_[static_cast<std::size_t>(seq % capacity_)];
  }

  // Copies the residents of [from, to) into a vector (clamped to what is
  // still buffered).  This is the "freeze between two pointers" snapshot.
  std::vector<T> snapshot(std::uint64_t from, std::uint64_t to) const {
    if (from < first_seq()) from = first_seq();
    if (to > next_seq_) to = next_seq_;
    std::vector<T> out;
    if (from >= to) return out;
    out.reserve(static_cast<std::size_t>(to - from));
    for (std::uint64_t s = from; s < to; ++s) out.push_back(at(s));
    return out;
  }

  std::size_t size() const {
    return static_cast<std::size_t>(next_seq_ - first_seq());
  }
  std::size_t capacity() const { return capacity_; }
  bool empty() const { return next_seq_ == 0; }

 private:
  std::size_t capacity_;
  std::vector<T> data_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace gretel::util
