// Crash-safe whole-file I/O shared by everything that persists state: the
// fingerprint database (gretel/db_io.cpp) and the checkpoint writer
// (persist/checkpoint.cpp).
//
// write_file_atomic is the tmp+fsync+rename idiom: write a sibling temp
// file (same directory, so the rename cannot cross filesystems), flush it
// all the way to the device, then atomically rename over the destination.
// A crash at any instruction leaves either the old complete file or the
// new complete file — never a torn one.  The visible-at-`path` content is
// all-or-nothing; callers that need the *directory entry* durable too (a
// brand-new file that must survive power loss) also get the parent
// directory fsync'd when `sync_dir` is set.
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace gretel::util {

bool write_file_atomic(const std::string& path, std::string_view data,
                       bool sync_dir = false);

// Whole file into memory; nullopt if it cannot be opened or read.
std::optional<std::string> read_file(const std::string& path);

}  // namespace gretel::util
