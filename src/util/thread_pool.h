// Fork-join worker pool for the fan-out fingerprint matcher.
//
// One coordinator thread repeatedly issues index-parallel jobs; the workers
// are persistent so a job costs two condition-variable round trips, not N
// thread spawns.  parallel_for() blocks until every index has run, and the
// calling thread participates, so a pool of W threads applies W+1 cores to
// the job.  Determinism contract: the pool only changes *which thread* runs
// fn(i), never whether or how often — callers that write disjoint outputs
// indexed by i and reduce serially afterwards get bit-identical results for
// any pool size, including zero (a pool with 0 threads runs everything
// inline on the caller).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gretel::util {

class ThreadPool {
 public:
  // Spawns `num_threads` workers; 0 is valid and makes parallel_for inline.
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  // Runs fn(i) exactly once for every i in [0, n), spread across the
  // workers and the calling thread; returns once all n calls completed.
  // Only one thread may call parallel_for at a time (the coordinator).
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();
  void work_on_job(const std::function<void(std::size_t)>& fn,
                   std::size_t n);

  std::mutex mutex_;
  std::condition_variable job_cv_;   // workers wait for a new generation
  std::condition_variable done_cv_;  // coordinator waits for completion
  bool stop_ = false;

  // Current job, published under mutex_ with a generation bump.
  std::uint64_t generation_ = 0;
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::size_t n_ = 0;
  std::atomic<std::size_t> next_{0};  // next unclaimed index
  std::atomic<std::size_t> done_{0};  // indices completed

  std::vector<std::thread> workers_;
};

}  // namespace gretel::util
