// Per-scenario seed derivation for fault campaigns.
//
// A campaign runs thousands of scenarios, each of which seeds several
// independent RNG consumers (the workload executor, ChaosTap, MonitorChaos,
// the resource monitor).  Deriving those child seeds as `root + k` is
// dangerously correlated: xoshiro's splitmix seeding and the stateless
// per-probe hash draws both mix *one* word, so adjacent additive seeds
// produce measurably related low bits across streams.  Instead every child
// seed is one splitmix64 step over a mix of (root, stream tag, index) —
// splitmix64 is a bijective avalanche permutation, so distinct inputs give
// uncorrelated, collision-free outputs (the same construction Rng itself
// uses to expand a seed into its 256-bit state).
#pragma once

#include <cstdint>

namespace gretel::util {

// One splitmix64 step: bijective avalanche mix of a 64-bit word.
inline constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

// Child seed for stream `stream` of scenario `index` under campaign seed
// `root`.  Each argument passes through its own splitmix step before being
// combined, so (root, 0, 1) and (root, 1, 0) land in unrelated orbits and
// scenario k's streams share nothing with scenario k+1's.
inline constexpr std::uint64_t derive_seed(std::uint64_t root,
                                           std::uint64_t stream,
                                           std::uint64_t index = 0) {
  return splitmix64(splitmix64(root) ^
                    splitmix64(stream * 0xA24BAED4963EE407ull + 1) ^
                    splitmix64(index * 0x9FB21C651E98DF25ull + 2));
}

// Well-known stream tags for the campaign engine's consumers.  Kept small
// and explicit so a scenario's derivation chain is auditable.
enum class SeedStream : std::uint64_t {
  Workload = 1,      // tempest workload sampling
  Executor = 2,      // WorkflowExecutor timing/noise
  WireChaos = 3,     // net::ChaosTap
  MonitorChaos = 4,  // monitor::MonitorChaos
  Metrics = 5,       // monitor::ResourceMonitor sampling jitter
  Generator = 6,     // scenario parameter sampling
  Scenario = 7,      // per-scenario root (children derive from this)
};

inline constexpr std::uint64_t derive_seed(std::uint64_t root,
                                           SeedStream stream,
                                           std::uint64_t index = 0) {
  return derive_seed(root, static_cast<std::uint64_t>(stream), index);
}

}  // namespace gretel::util
