// Simulated time for the GRETEL reproduction.
//
// Everything in the simulator and the analyzer is driven by a virtual clock
// so that experiments are deterministic and can model a 20-minute Tempest run
// in milliseconds of wall time.  SimTime is a strong nanosecond timestamp;
// SimDuration is a signed nanosecond span.
#pragma once

#include <chrono>
#include <compare>
#include <cstdint>

namespace gretel::util {

// A signed span of simulated time, in nanoseconds.
class SimDuration {
 public:
  constexpr SimDuration() = default;
  constexpr explicit SimDuration(std::int64_t nanos) : nanos_(nanos) {}

  static constexpr SimDuration nanos(std::int64_t n) { return SimDuration(n); }
  static constexpr SimDuration micros(std::int64_t u) {
    return SimDuration(u * 1'000);
  }
  static constexpr SimDuration millis(std::int64_t m) {
    return SimDuration(m * 1'000'000);
  }
  static constexpr SimDuration seconds(std::int64_t s) {
    return SimDuration(s * 1'000'000'000);
  }
  static constexpr SimDuration minutes(std::int64_t m) {
    return seconds(m * 60);
  }

  constexpr std::int64_t count() const { return nanos_; }
  constexpr double to_seconds() const {
    return static_cast<double>(nanos_) / 1e9;
  }
  constexpr double to_millis() const {
    return static_cast<double>(nanos_) / 1e6;
  }

  constexpr auto operator<=>(const SimDuration&) const = default;

  constexpr SimDuration operator+(SimDuration o) const {
    return SimDuration(nanos_ + o.nanos_);
  }
  constexpr SimDuration operator-(SimDuration o) const {
    return SimDuration(nanos_ - o.nanos_);
  }
  constexpr SimDuration operator*(std::int64_t k) const {
    return SimDuration(nanos_ * k);
  }
  constexpr SimDuration operator/(std::int64_t k) const {
    return SimDuration(nanos_ / k);
  }
  constexpr SimDuration operator-() const { return SimDuration(-nanos_); }
  constexpr SimDuration& operator+=(SimDuration o) {
    nanos_ += o.nanos_;
    return *this;
  }

 private:
  std::int64_t nanos_ = 0;
};

// An absolute point on the simulated timeline (nanoseconds since sim epoch).
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(std::int64_t nanos) : nanos_(nanos) {}

  static constexpr SimTime epoch() { return SimTime(0); }

  constexpr std::int64_t nanos() const { return nanos_; }
  constexpr double to_seconds() const {
    return static_cast<double>(nanos_) / 1e9;
  }

  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime operator+(SimDuration d) const {
    return SimTime(nanos_ + d.count());
  }
  constexpr SimTime operator-(SimDuration d) const {
    return SimTime(nanos_ - d.count());
  }
  constexpr SimDuration operator-(SimTime o) const {
    return SimDuration(nanos_ - o.nanos_);
  }
  constexpr SimTime& operator+=(SimDuration d) {
    nanos_ += d.count();
    return *this;
  }

 private:
  std::int64_t nanos_ = 0;
};

// A manually advanced clock.  The workflow executor advances it as events are
// scheduled; monitors and detectors read it.
class SimClock {
 public:
  SimTime now() const { return now_; }

  void advance(SimDuration d) { now_ += d; }

  // Moves the clock forward to `t`; never goes backwards.
  void advance_to(SimTime t) {
    if (t > now_) now_ = t;
  }

  void reset() { now_ = SimTime::epoch(); }

 private:
  SimTime now_ = SimTime::epoch();
};

}  // namespace gretel::util
