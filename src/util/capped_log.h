// Bounded append-only audit log: a capped ring plus an overflow counter.
//
// The chaos injectors (net::ChaosTap, monitor::MonitorChaos) append one
// entry per injection so tests can reconcile pipeline counters against
// exactly what was injected.  A thousand-scenario fault campaign injects
// millions of faults, so an unbounded vector would grow memory without
// bound; this log retains the newest `cap` entries in arrival order and
// counts what it sheds.  Under the cap it is exactly the vector it
// replaces — nothing is dropped and iteration order is append order — so
// exact-reconciliation tests keep their semantics; over the cap, the
// aggregate counters the injectors maintain separately remain exact while
// the retained window slides forward.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gretel::util {

template <typename T>
class CappedLog {
 public:
  // cap = 0 means unbounded (a plain vector).
  explicit CappedLog(std::size_t cap = 0) : cap_(cap) {}

  void set_cap(std::size_t cap) { cap_ = cap; }
  std::size_t cap() const { return cap_; }

  void push_back(T value) {
    if (cap_ == 0 || entries_.size() < cap_) {
      entries_.push_back(std::move(value));
      return;
    }
    // Full: overwrite the oldest retained entry.
    entries_[head_] = std::move(value);
    head_ = (head_ + 1) % cap_;
    ++dropped_;
  }

  // Retained entries (≤ cap when capped).
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  // Entries shed to the cap; size() + dropped() is everything appended.
  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t total_appended() const { return size() + dropped_; }

  // i-th retained entry in arrival order (0 = oldest retained).
  const T& operator[](std::size_t i) const {
    return entries_[(head_ + i) % entries_.size()];
  }

  // Arrival-order iteration (range-for compatible).
  class const_iterator {
   public:
    const_iterator(const CappedLog* log, std::size_t i) : log_(log), i_(i) {}
    const T& operator*() const { return (*log_)[i_]; }
    const T* operator->() const { return &(*log_)[i_]; }
    const_iterator& operator++() { ++i_; return *this; }
    bool operator!=(const const_iterator& o) const { return i_ != o.i_; }
    bool operator==(const const_iterator& o) const { return i_ == o.i_; }

   private:
    const CappedLog* log_;
    std::size_t i_;
  };
  const_iterator begin() const { return {this, 0}; }
  const_iterator end() const { return {this, entries_.size()}; }

  // Retained entries materialized in arrival order.
  std::vector<T> snapshot() const {
    std::vector<T> out;
    out.reserve(entries_.size());
    for (const auto& e : *this) out.push_back(e);
    return out;
  }

  void clear() {
    entries_.clear();
    head_ = 0;
    dropped_ = 0;
  }

 private:
  std::size_t cap_;
  std::vector<T> entries_;
  std::size_t head_ = 0;  // oldest retained entry once the ring is full
  std::uint64_t dropped_ = 0;
};

}  // namespace gretel::util
