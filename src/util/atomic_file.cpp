#include "util/atomic_file.h"

#include <cstdio>
#include <memory>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

namespace gretel::util {

namespace {
using FileHandle = std::unique_ptr<std::FILE, int (*)(std::FILE*)>;

#if defined(__unix__) || defined(__APPLE__)
void sync_parent_dir(const std::string& path) {
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}
#endif
}  // namespace

bool write_file_atomic(const std::string& path, std::string_view data,
                       bool sync_dir) {
  const std::string tmp = path + ".tmp";
  {
    FileHandle f(std::fopen(tmp.c_str(), "wb"), &std::fclose);
    if (!f) return false;
    if ((!data.empty() &&
         std::fwrite(data.data(), 1, data.size(), f.get()) != data.size()) ||
        std::fflush(f.get()) != 0) {
      f.reset();
      std::remove(tmp.c_str());
      return false;
    }
#if defined(__unix__) || defined(__APPLE__)
    if (fsync(fileno(f.get())) != 0) {
      f.reset();
      std::remove(tmp.c_str());
      return false;
    }
#endif
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
#if defined(__unix__) || defined(__APPLE__)
  if (sync_dir) sync_parent_dir(path);
#else
  (void)sync_dir;
#endif
  return true;
}

std::optional<std::string> read_file(const std::string& path) {
  FileHandle f(std::fopen(path.c_str(), "rb"), &std::fclose);
  if (!f) return std::nullopt;
  std::string data;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f.get())) > 0) {
    data.append(buf, n);
  }
  if (std::ferror(f.get())) return std::nullopt;
  return data;
}

}  // namespace gretel::util
