#include "util/logging.h"

#include <atomic>
#include <cstdio>

namespace gretel::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};
}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::Trace:
      return "TRACE";
    case LogLevel::Debug:
      return "DEBUG";
    case LogLevel::Info:
      return "INFO";
    case LogLevel::Warn:
      return "WARN";
    case LogLevel::Error:
      return "ERROR";
    case LogLevel::Off:
      return "OFF";
  }
  return "?";
}

void log_line(LogLevel level, std::string_view component,
              std::string_view message) {
  if (level < log_level()) return;
  std::fprintf(stderr, "[%s] %.*s: %.*s\n", to_string(level),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace gretel::util
