// Bump/slab arena for the ingestion hot path.
//
// The capture tap decodes thousands of messages per second; giving every
// header field and normalized URI its own std::string puts a malloc/free
// pair on the critical path of each event.  The arena replaces that with a
// pointer bump: allocations live until reset(), which recycles every slab
// in O(slabs) without touching the heap.  After warmup (once the slab list
// has grown to the batch's high-water mark) the steady state performs zero
// heap allocations per decoded event — the property bench_ingest_hotpath
// asserts.
//
// Not thread-safe: one arena per decoding thread (CaptureTap owns one).
// Lifetime rule: anything allocated here is dead after reset(); only data
// copied out (e.g. Event::error_text) may outlive the capture batch.  See
// docs/ARCHITECTURE.md, "Hot path & memory model".
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <string_view>
#include <type_traits>
#include <vector>

namespace gretel::util {

class Arena {
 public:
  static constexpr std::size_t kDefaultSlabBytes = 64 * 1024;

  explicit Arena(std::size_t slab_bytes = kDefaultSlabBytes)
      : slab_bytes_(slab_bytes == 0 ? kDefaultSlabBytes : slab_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Uninitialized storage; align must be a power of two.
  void* allocate(std::size_t size, std::size_t align = alignof(std::max_align_t)) {
    std::size_t offset = (cursor_ + align - 1) & ~(align - 1);
    if (current_ >= slabs_.size() || offset + size > slabs_[current_].size) {
      next_slab(size + align);
      offset = (cursor_ + align - 1) & ~(align - 1);
    }
    cursor_ = offset + size;
    bytes_used_ += size;
    return slabs_[current_].data.get() + offset;
  }

  // Typed uninitialized array (caller constructs the elements in place; the
  // view codecs only store trivially-destructible types here).
  template <typename T>
  T* allocate_array(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena never runs destructors");
    return static_cast<T*>(allocate(count * sizeof(T), alignof(T)));
  }

  // Copies `s` into the arena; the returned view dies at reset().
  std::string_view copy(std::string_view s) {
    if (s.empty()) return {};
    char* dst = static_cast<char*>(allocate(s.size(), 1));
    std::memcpy(dst, s.data(), s.size());
    return {dst, s.size()};
  }

  // Recycles every slab.  Retains capacity, so a warmed-up arena allocates
  // nothing from the heap on subsequent batches of the same size.
  void reset() {
    current_ = 0;
    cursor_ = 0;
    bytes_used_ = 0;
    ++resets_;
  }

  // Releases slab memory back to the heap (tests / shutdown).
  void release() {
    slabs_.clear();
    current_ = 0;
    cursor_ = 0;
    bytes_used_ = 0;
  }

  std::size_t slab_count() const { return slabs_.size(); }
  std::size_t bytes_used() const { return bytes_used_; }
  std::uint64_t resets() const { return resets_; }

 private:
  struct Slab {
    std::unique_ptr<char[]> data;
    std::size_t size = 0;
  };

  // Advances to the next slab that can hold `need` bytes, creating one if
  // the retained list is exhausted (or the existing next slab is too small
  // for an oversized allocation).
  void next_slab(std::size_t need) {
    const std::size_t want = need > slab_bytes_ ? need : slab_bytes_;
    std::size_t next = slabs_.empty() ? 0 : current_ + 1;
    while (next < slabs_.size() && slabs_[next].size < want) ++next;
    if (next >= slabs_.size()) {
      slabs_.push_back(Slab{std::make_unique<char[]>(want), want});
      next = slabs_.size() - 1;
    }
    current_ = next;
    cursor_ = 0;
  }

  std::size_t slab_bytes_;
  std::vector<Slab> slabs_;
  std::size_t current_ = 0;  // index of the slab being bumped
  std::size_t cursor_ = 0;   // bump offset within the current slab
  std::size_t bytes_used_ = 0;
  std::uint64_t resets_ = 0;
};

}  // namespace gretel::util
