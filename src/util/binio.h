// Big-endian byte (de)serialization helpers shared by the on-disk formats:
// the fingerprint database (gretel/db_io.cpp), the checkpoint container and
// the report journal (src/persist/).  One vocabulary, so every format
// agrees on integer width and byte order and the decoders compose: every
// get_* consumes from the front of a string_view and returns false on
// truncation, which makes "reject torn input" the default behavior.
//
// Doubles travel as the IEEE-754 bit pattern in a u64 — bit-exact
// round-trips, which the checkpoint format relies on for its "restored
// detector state is the saved detector state" contract.
#pragma once

#include <bit>
#include <cstdint>
#include <string>
#include <string_view>

namespace gretel::util {

inline void put_u8(std::string& out, std::uint8_t v) {
  out += static_cast<char>(v);
}
inline void put_u16(std::string& out, std::uint16_t v) {
  out += static_cast<char>((v >> 8) & 0xFF);
  out += static_cast<char>(v & 0xFF);
}
inline void put_u32(std::string& out, std::uint32_t v) {
  put_u16(out, static_cast<std::uint16_t>(v >> 16));
  put_u16(out, static_cast<std::uint16_t>(v & 0xFFFF));
}
inline void put_u64(std::string& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
  put_u32(out, static_cast<std::uint32_t>(v & 0xFFFFFFFFu));
}
inline void put_i64(std::string& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}
inline void put_f64(std::string& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}
// Length-prefixed byte string (u32 length).
inline void put_bytes(std::string& out, std::string_view bytes) {
  put_u32(out, static_cast<std::uint32_t>(bytes.size()));
  out += bytes;
}

inline bool get_u8(std::string_view& in, std::uint8_t& v) {
  if (in.empty()) return false;
  v = static_cast<std::uint8_t>(in[0]);
  in.remove_prefix(1);
  return true;
}
inline bool get_u16(std::string_view& in, std::uint16_t& v) {
  if (in.size() < 2) return false;
  v = static_cast<std::uint16_t>((static_cast<std::uint8_t>(in[0]) << 8) |
                                 static_cast<std::uint8_t>(in[1]));
  in.remove_prefix(2);
  return true;
}
inline bool get_u32(std::string_view& in, std::uint32_t& v) {
  std::uint16_t hi = 0;
  std::uint16_t lo = 0;
  if (!get_u16(in, hi) || !get_u16(in, lo)) return false;
  v = (static_cast<std::uint32_t>(hi) << 16) | lo;
  return true;
}
inline bool get_u64(std::string_view& in, std::uint64_t& v) {
  std::uint32_t hi = 0;
  std::uint32_t lo = 0;
  if (!get_u32(in, hi) || !get_u32(in, lo)) return false;
  v = (static_cast<std::uint64_t>(hi) << 32) | lo;
  return true;
}
inline bool get_i64(std::string_view& in, std::int64_t& v) {
  std::uint64_t u = 0;
  if (!get_u64(in, u)) return false;
  v = static_cast<std::int64_t>(u);
  return true;
}
inline bool get_f64(std::string_view& in, double& v) {
  std::uint64_t u = 0;
  if (!get_u64(in, u)) return false;
  v = std::bit_cast<double>(u);
  return true;
}
inline bool get_bytes(std::string_view& in, std::string_view& bytes) {
  std::uint32_t len = 0;
  if (!get_u32(in, len) || in.size() < len) return false;
  bytes = in.substr(0, len);
  in.remove_prefix(len);
  return true;
}

}  // namespace gretel::util
