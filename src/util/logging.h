// Minimal leveled logger.  The analyzer and monitors log through this so the
// examples can show GRETEL's diagnosis narrative; benchmarks keep it at Warn.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace gretel::util {

enum class LogLevel : int { Trace = 0, Debug, Info, Warn, Error, Off };

LogLevel log_level();
void set_log_level(LogLevel level);
const char* to_string(LogLevel level);

// Writes one formatted line to stderr if `level` is enabled.
void log_line(LogLevel level, std::string_view component,
              std::string_view message);

// Streaming helper: LogStream(LogLevel::Info, "analyzer") << "matched " << n;
class LogStream {
 public:
  LogStream(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;
  ~LogStream() {
    if (level_ >= log_level()) log_line(level_, component_, oss_.str());
  }

  template <typename T>
  LogStream& operator<<(const T& v) {
    if (level_ >= log_level()) oss_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream oss_;
};

}  // namespace gretel::util

#define GRETEL_LOG(level, component) \
  ::gretel::util::LogStream(::gretel::util::LogLevel::level, component)
