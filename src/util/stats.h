// Small statistics toolkit used across the analyzer, the detectors and the
// benchmark harnesses: running moments, order statistics, robust estimators
// (median / MAD) and empirical CDFs.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace gretel::util {

// Single-pass mean / variance / extrema (Welford).
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  // sample variance; 0 for n < 2
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  void reset() { *this = RunningStats{}; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Order statistics over a copy of the data (linear-interpolated quantile).
// q in [0, 1]; empty input yields 0.
double quantile(std::span<const double> xs, double q);
double median(std::span<const double> xs);

// Median absolute deviation scaled to be a consistent estimator of the
// standard deviation under normality (factor 1.4826).
double mad_sigma(std::span<const double> xs);

// Allocation-free variants for refresh hot loops: permute the caller's
// buffer (nth_element selection, O(n) expected) instead of copying and
// sorting it.  Bit-identical to median()/mad_sigma() on the same values —
// including the interpolation arithmetic on even sizes and signed-zero
// edge cases — so detectors can switch per call site without changing
// output (pinned by tests/util/stats_test.cpp).
double median_inplace(std::span<double> xs);
double mad_sigma_inplace(std::span<double> xs);

// Empirical CDF over a sample; evaluate() returns P[X <= x].
class EmpiricalCdf {
 public:
  explicit EmpiricalCdf(std::vector<double> xs);

  double evaluate(double x) const;
  // Fraction-at-or-below for each of the sorted sample points, convenient for
  // printing CDF tables: returns (value, cumulative fraction) pairs.
  std::vector<std::pair<double, double>> points() const;
  std::size_t size() const { return xs_.size(); }

 private:
  std::vector<double> xs_;  // sorted
};

// A timestamped scalar series (latency per API, CPU per node, ...).
struct SeriesPoint {
  double t_seconds;
  double value;
};

class TimeSeries {
 public:
  void add(double t_seconds, double value) {
    points_.push_back({t_seconds, value});
  }
  std::span<const SeriesPoint> points() const { return points_; }
  std::vector<double> values() const;
  std::size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }
  void clear() { points_.clear(); }

  // Drops the n oldest points (streaming retention/caps).  O(remaining);
  // callers amortize by dropping in batches rather than one at a time.
  void drop_front(std::size_t n) {
    if (n == 0) return;
    if (n >= points_.size()) {
      points_.clear();
      return;
    }
    points_.erase(points_.begin(),
                  points_.begin() + static_cast<std::ptrdiff_t>(n));
  }

 private:
  std::vector<SeriesPoint> points_;
};

}  // namespace gretel::util
