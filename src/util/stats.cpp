#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace gretel::util {

void RunningStats::add(double x) {
  ++n_;
  sum_ += x;
  if (n_ == 1) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double quantile(std::span<const double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double mad_sigma(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  const double med = median(xs);
  std::vector<double> dev;
  dev.reserve(xs.size());
  for (double x : xs) dev.push_back(std::fabs(x - med));
  return 1.4826 * median(dev);
}

double median_inplace(std::span<double> xs) {
  if (xs.empty()) return 0.0;
  const std::size_t n = xs.size();
  // Exactly quantile(xs, 0.5)'s arithmetic: lo = floor(0.5*(n-1)),
  // hi = lo+1 clamped, interpolate — the v[hi]*frac term participates even
  // when frac == 0.0 (it decides the sign of a ±0.0 result), so the upper
  // order statistic is always materialized.
  const double pos = 0.5 * static_cast<double>(n - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(lo),
                   xs.end());
  const double vlo = xs[lo];
  const double vhi =
      lo + 1 < n
          ? *std::min_element(xs.begin() + static_cast<std::ptrdiff_t>(lo) + 1,
                              xs.end())
          : vlo;
  return vlo * (1.0 - frac) + vhi * frac;
}

double mad_sigma_inplace(std::span<double> xs) {
  if (xs.empty()) return 0.0;
  const double med = median_inplace(xs);
  for (auto& x : xs) x = std::fabs(x - med);
  return 1.4826 * median_inplace(xs);
}

EmpiricalCdf::EmpiricalCdf(std::vector<double> xs) : xs_(std::move(xs)) {
  std::sort(xs_.begin(), xs_.end());
}

double EmpiricalCdf::evaluate(double x) const {
  if (xs_.empty()) return 0.0;
  const auto it = std::upper_bound(xs_.begin(), xs_.end(), x);
  return static_cast<double>(it - xs_.begin()) /
         static_cast<double>(xs_.size());
}

std::vector<std::pair<double, double>> EmpiricalCdf::points() const {
  std::vector<std::pair<double, double>> out;
  out.reserve(xs_.size());
  for (std::size_t i = 0; i < xs_.size(); ++i) {
    out.emplace_back(xs_[i], static_cast<double>(i + 1) /
                                 static_cast<double>(xs_.size()));
  }
  return out;
}

std::vector<double> TimeSeries::values() const {
  std::vector<double> out;
  out.reserve(points_.size());
  for (const auto& p : points_) out.push_back(p.value);
  return out;
}

}  // namespace gretel::util
