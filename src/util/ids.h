// Strong identifier types.
//
// The simulator and the analyzer pass many small integer handles around
// (APIs, nodes, operations, operation instances).  Tagged wrappers keep them
// from being mixed up at compile time at zero runtime cost.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>

namespace gretel::util {

template <typename Tag, typename Rep = std::uint32_t>
class StrongId {
 public:
  using rep_type = Rep;

  constexpr StrongId() = default;
  constexpr explicit StrongId(Rep value) : value_(value) {}

  constexpr Rep value() const { return value_; }
  constexpr auto operator<=>(const StrongId&) const = default;

  static constexpr StrongId invalid() { return StrongId(static_cast<Rep>(-1)); }
  constexpr bool valid() const { return value_ != static_cast<Rep>(-1); }

 private:
  Rep value_ = static_cast<Rep>(-1);
};

}  // namespace gretel::util

// Hash support so strong ids can key unordered containers.
template <typename Tag, typename Rep>
struct std::hash<gretel::util::StrongId<Tag, Rep>> {
  std::size_t operator()(
      const gretel::util::StrongId<Tag, Rep>& id) const noexcept {
    return std::hash<Rep>{}(id.value());
  }
};
