// Campaign orchestration: run one scenario end-to-end and score it.
//
// For each ScenarioSpec the orchestrator builds a fresh deployment (env
// faults mutate node state), applies the environmental perturbation,
// launches the background workload with the injected faults riding on top,
// routes the captured wire traffic through ChaosTap, enforces the event
// budget, and feeds the survivors to a full Analyzer (root cause on,
// probed monitoring when the scenario degrades that plane).  The outcome
// is scored against ground truth — per-fault detection/identification via
// instance labels, env-cause localization via node/daemon match — and the
// diagnosis set is collapsed to its failure-mode fingerprint for
// clustering.  Chaos audit logs are reconciled against the pipeline's
// counters on every scenario; a reconciliation mismatch is itself an
// outcome (Crashed), because it means the telemetry bookkeeping lied.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "campaign/fingerprint.h"
#include "campaign/generator.h"
#include "campaign/scenario.h"
#include "gretel/training.h"

namespace gretel::campaign {

// How the analyzer's conclusion relates to the scenario's ground truth.
enum class Outcome : std::uint8_t {
  Localized,      // every fault detected, true op identified, env cause hit
  Missed,         // a fault went undetected, or the env cause never appeared
  Misattributed,  // detected, but pinned on the wrong op / node / daemon
  Crashed,        // exception, or audit/counter reconciliation failure
};
const char* to_string(Outcome o);
inline constexpr std::size_t kOutcomes = 4;

struct ScenarioResult {
  std::uint64_t id = 0;
  FaultClass fault_class = FaultClass::OpError;
  Outcome outcome = Outcome::Missed;
  // Failure-mode signature of the diagnosis set (fingerprint.h).
  std::uint64_t fingerprint = 0;

  std::size_t faults_total = 0;
  std::size_t faults_detected = 0;
  std::size_t faults_identified = 0;
  bool env_expected = false;
  bool env_localized = false;
  std::size_t diagnoses = 0;
  std::uint64_t events = 0;       // records analyzed (post-chaos, post-budget)
  bool budget_truncated = false;  // event budget clipped the stream
  // Audit entries shed past the retention caps (0 unless a scenario's
  // injection volume exceeded them; aggregate stats stay exact regardless).
  std::uint64_t audit_shed = 0;
  // Streaming execution only (CampaignPlan::streaming): detection ticks
  // run, records shed at admission, and the latency from the earliest
  // fault injection to the first emitted report (-1 when the scenario has
  // no faults or nothing was reported).
  std::uint64_t stream_ticks = 0;
  std::uint64_t stream_shed = 0;
  double first_report_latency_ms = -1.0;
  std::string note;  // crash reason / reconciliation detail, else empty
};

class CampaignOrchestrator {
 public:
  CampaignOrchestrator(const tempest::TempestCatalog* catalog,
                       const core::TrainingReport* training,
                       CampaignPlan plan);

  ScenarioResult run(const ScenarioSpec& spec) const;
  std::vector<ScenarioResult> run_all(
      std::span<const ScenarioSpec> specs) const;

 private:
  ScenarioResult run_guarded(const ScenarioSpec& spec) const;

  const tempest::TempestCatalog* catalog_;
  const core::TrainingReport* training_;
  CampaignPlan plan_;
};

}  // namespace gretel::campaign
