// Scenario generation: enumerate/sample the campaign fault space.
//
// The generator walks the fault classes round-robin (so even a reduced CI
// campaign covers every class) and samples each scenario's parameters —
// injection site, intensity, start/duration, workload mix — from an RNG
// seeded by splitmix64 derivation over (campaign seed, scenario index).
// Same plan + same seed → byte-identical scenario list, which is what
// makes whole sweeps reproducible and lets failure clusters be named by
// scenario id.
#pragma once

#include <cstdint>
#include <vector>

#include "campaign/scenario.h"
#include "gretel/config.h"
#include "tempest/catalog.h"

namespace gretel::campaign {

struct CampaignPlan {
  std::uint64_t seed = 0xCA59A16Eull;
  std::size_t scenarios = 500;
  // Cap on simultaneous injected workload faults (multi-fault classes).
  std::size_t max_concurrent_faults = 2;
  // Per-scenario analysis budget, in post-chaos wire records (0 = off).
  std::size_t budget_events = 200000;
  // Background workload per scenario; faults ride on top of this mix.
  int concurrent_tests = 12;
  double window_s = 45.0;

  // Streaming execution: feed each scenario through the StreamAnalyzer
  // front end (bounded source ring, periodic detection ticks) instead of
  // the batch on_wire/finish path, and record the fault-injection-to-
  // first-report latency per scenario.  Scoring is unchanged; reports are
  // tick-quantized, so fingerprints may differ from batch mode.
  bool streaming = false;
  // Tick cadence for streaming execution (<= 0 keeps the config default).
  double stream_tick_ms = 0.0;

  // Reads the campaign_* knobs from the promoted GretelConfig rows.
  static CampaignPlan from(const core::GretelConfig& config) {
    CampaignPlan p;
    p.seed = config.campaign_seed;
    p.budget_events = config.campaign_budget_events;
    p.max_concurrent_faults = config.campaign_max_concurrent_faults;
    return p;
  }
};

class ScenarioGenerator {
 public:
  ScenarioGenerator(const tempest::TempestCatalog* catalog,
                    CampaignPlan plan);

  // All scenarios of the campaign, in id order.
  std::vector<ScenarioSpec> generate() const;

  // Scenario `index` alone (generation is per-scenario deterministic, so
  // single scenarios can be re-derived for debugging a cluster member).
  ScenarioSpec generate_one(std::uint64_t index) const;

 private:
  const tempest::TempestCatalog* catalog_;
  CampaignPlan plan_;
};

}  // namespace gretel::campaign
