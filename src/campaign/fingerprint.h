// Failure-mode fingerprints: a stable 64-bit signature of what the
// analyzer *concluded*, independent of how it got there.
//
// The fingerprint hashes a canonical serialization of a diagnosis set —
// fault kind, offending operation, matched-operation names, degraded
// flags, evidence gaps and the canonically-ordered cause list — and
// deliberately excludes everything presentation- or timing-flavored:
// detection timestamps, θ/β search internals, float scores/confidences,
// and probe_time_ms.  Two runs that reached the same diagnosis therefore
// fingerprint identically even across shard counts and scalar/SIMD kernel
// builds (the determinism contract), while any change in the *structure*
// of the conclusion (extra cause, weaker evidence, degraded flag) lands
// the run in a different failure-mode cluster.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "gretel/fingerprint_db.h"
#include "gretel/report.h"
#include "wire/api.h"

namespace gretel::campaign {

// FNV-1a over `s`.  Small, dependency-free, and stable by construction —
// the constants are part of the fingerprint's on-disk contract.
std::uint64_t fnv1a64(std::string_view s);

// Canonical (normalized) serialization of one diagnosis.  JSON-shaped so
// clusters can be eyeballed, but NOT the operator-facing to_json document:
// volatile fields are dropped and causes are re-ordered with
// core::cause_canonical_less before emission.
std::string canonical_report(const core::Diagnosis& d,
                             const wire::ApiCatalog& catalog,
                             const core::FingerprintDb& db);

// Fingerprint of a whole scenario's diagnosis set.  Canonical per-report
// strings are sorted before hashing, so report arrival order (a sharding
// artifact for same-timestamp detections) cannot perturb the signature.
// An empty set has a well-known fingerprint (hash of "[]").
std::uint64_t report_fingerprint(std::span<const core::Diagnosis> diagnoses,
                                 const wire::ApiCatalog& catalog,
                                 const core::FingerprintDb& db);

// Lower-case 16-digit hex rendering, the form used in reports and JSON.
std::string fingerprint_hex(std::uint64_t fp);

}  // namespace gretel::campaign
