#include "campaign/generator.h"

#include <array>

#include "util/rng.h"
#include "util/seed.h"

namespace gretel::campaign {

using stack::Category;
using util::Rng;
using util::SeedStream;
using util::derive_seed;
using wire::ServiceKind;

const char* to_string(FaultClass c) {
  switch (c) {
    case FaultClass::OpError: return "op_error";
    case FaultClass::EnvCpuSurge: return "env_cpu_surge";
    case FaultClass::EnvDiskExhaustion: return "env_disk_exhaustion";
    case FaultClass::EnvDaemonCrash: return "env_daemon_crash";
    case FaultClass::EnvLinkLatency: return "env_link_latency";
    case FaultClass::WireChaos: return "wire_chaos";
    case FaultClass::MonitorChaos: return "monitor_chaos";
    case FaultClass::MultiIndependent: return "multi_independent";
    case FaultClass::Cascade: return "cascade";
  }
  return "unknown";
}

namespace {

// (service, daemon) crash sites — every daemon here is installed by
// net::default_software_for on the service's node(s) and watched by the
// dependency watcher, so a correct localization is *possible* for each.
struct CrashSite {
  ServiceKind service;
  const char* daemon;
};
constexpr std::array<CrashSite, 4> kCrashSites{{
    {ServiceKind::NovaCompute, "neutron-plugin-linuxbridge-agent"},
    {ServiceKind::Nova, "nova-conductor"},
    {ServiceKind::Neutron, "neutron-dhcp-agent"},
    {ServiceKind::Glance, "glance-registry"},
}};

constexpr std::array<ServiceKind, 4> kSurgeServices{
    ServiceKind::Nova, ServiceKind::Neutron, ServiceKind::Glance,
    ServiceKind::Cinder};

constexpr std::array<ServiceKind, 2> kDiskServices{ServiceKind::Glance,
                                                   ServiceKind::Cinder};

constexpr std::array<ServiceKind, 3> kLinkServices{
    ServiceKind::Neutron, ServiceKind::Glance, ServiceKind::MySql};

constexpr std::array<std::uint16_t, 3> kStatuses{500, 503, 409};

// Non-transient state-change steps of `op` (the workload executor relays
// aborts at these through the dashboard poll, so the error surfaces).
std::vector<std::size_t> state_change_steps(
    const tempest::TempestCatalog& catalog,
    const stack::OperationTemplate& op) {
  std::vector<std::size_t> steps;
  for (std::size_t s = 0; s < op.steps.size(); ++s) {
    if (op.steps[s].transient) continue;
    if (catalog.apis().get(op.steps[s].api).state_change())
      steps.push_back(s);
  }
  return steps;
}

// Steps of `op` that call into `service` (state-change preferred).
std::vector<std::size_t> steps_calling(
    const tempest::TempestCatalog& catalog,
    const stack::OperationTemplate& op, ServiceKind service) {
  std::vector<std::size_t> strict, any;
  for (std::size_t s = 0; s < op.steps.size(); ++s) {
    if (op.steps[s].transient) continue;
    if (op.steps[s].callee != service) continue;
    any.push_back(s);
    if (catalog.apis().get(op.steps[s].api).state_change())
      strict.push_back(s);
  }
  return strict.empty() ? any : strict;
}

// Uniform Compute/Network operation with at least one state-change step
// (the §7.3 faulty-operation pool).
std::size_t pick_faultable_op(const tempest::TempestCatalog& catalog,
                              Rng& rng) {
  for (int tries = 0; tries < 64; ++tries) {
    const auto cat =
        rng.chance(0.67) ? Category::Compute : Category::Network;
    const auto& ops = catalog.category_ops(cat);
    const auto op_idx = ops[rng.next_below(ops.size())];
    if (!state_change_steps(catalog, catalog.operation(op_idx)).empty())
      return op_idx;
  }
  return catalog.category_ops(Category::Compute).front();
}

// Operation with a step calling `service`; falls back to any faultable op
// when the catalog sample keeps missing (the orchestrator then scores the
// scenario on the workload fault alone).
std::size_t pick_op_calling(const tempest::TempestCatalog& catalog,
                            ServiceKind service, Rng& rng,
                            std::size_t* fail_step) {
  for (int tries = 0; tries < 96; ++tries) {
    // Search the whole catalog uniformly; env faults are not restricted to
    // the Compute/Network pools (a Glance disk fault needs an Image op).
    const auto op_idx = rng.next_below(catalog.operations().size());
    const auto& op = catalog.operation(op_idx);
    const auto steps = steps_calling(catalog, op, service);
    if (!steps.empty()) {
      *fail_step = steps[rng.next_below(steps.size())];
      return op_idx;
    }
  }
  const auto op_idx = pick_faultable_op(catalog, rng);
  const auto steps = state_change_steps(catalog, catalog.operation(op_idx));
  *fail_step = steps.front();
  return op_idx;
}

InjectedFault sample_plain_fault(const tempest::TempestCatalog& catalog,
                                 double window_s, Rng& rng) {
  InjectedFault f;
  f.op_index = pick_faultable_op(catalog, rng);
  const auto steps = state_change_steps(catalog,
                                        catalog.operation(f.op_index));
  f.fail_step = steps[rng.next_below(steps.size())];
  f.status = kStatuses[rng.next_below(kStatuses.size())];
  f.start_offset_s = (0.2 + 0.6 * rng.next_double()) * window_s;
  return f;
}

InjectedFault sample_fault_calling(const tempest::TempestCatalog& catalog,
                                   ServiceKind service, double window_s,
                                   Rng& rng) {
  InjectedFault f;
  f.op_index = pick_op_calling(catalog, service, rng, &f.fail_step);
  f.status = kStatuses[rng.next_below(kStatuses.size())];
  f.start_offset_s = (0.2 + 0.6 * rng.next_double()) * window_s;
  return f;
}

}  // namespace

ScenarioGenerator::ScenarioGenerator(const tempest::TempestCatalog* catalog,
                                     CampaignPlan plan)
    : catalog_(catalog), plan_(plan) {}

ScenarioSpec ScenarioGenerator::generate_one(std::uint64_t index) const {
  ScenarioSpec spec;
  spec.id = index;
  spec.fault_class = static_cast<FaultClass>(index % kFaultClasses);
  spec.seed = derive_seed(plan_.seed, SeedStream::Scenario, index);
  spec.concurrent_tests = plan_.concurrent_tests;
  spec.window_s = plan_.window_s;

  // Parameter sampling draws from a stream independent of the seeds the
  // orchestrator hands to the run-time consumers.
  Rng rng(derive_seed(spec.seed, SeedStream::Generator));
  const auto& catalog = *catalog_;
  const std::size_t max_faults =
      plan_.max_concurrent_faults > 0 ? plan_.max_concurrent_faults : 1;

  const auto env_window = [&](EnvFault& env) {
    // Onset after a clean prefix: every injected workload fault launches
    // at >= 0.2 × window, so the perturbation is active for all of them,
    // while the prefix gives the window analysis uncontaminated baseline
    // samples (a perturbation spanning the entire capture is statistically
    // indistinguishable from the node's normal level).
    env.start_s = 0.1 * spec.window_s;
    env.duration_s = spec.window_s + 60.0;
  };

  switch (spec.fault_class) {
    case FaultClass::OpError:
      spec.faults.push_back(sample_plain_fault(catalog, spec.window_s, rng));
      break;

    case FaultClass::EnvCpuSurge: {
      spec.env.kind = EnvFault::Kind::CpuSurge;
      spec.env.service =
          kSurgeServices[rng.next_below(kSurgeServices.size())];
      // A whole-window surge leaves no clean in-capture baseline for the
      // relative window test, so draws must clear the absolute "CPU pegged
      // above 90%" rule: idle baseline ~8% + 85..97 pts ≈ 93..105%.
      spec.env.intensity = 85.0 + 12.0 * rng.next_double();
      env_window(spec.env);
      spec.faults.push_back(sample_fault_calling(catalog, spec.env.service,
                                                 spec.window_s, rng));
      break;
    }

    case FaultClass::EnvDiskExhaustion: {
      spec.env.kind = EnvFault::Kind::DiskExhaustion;
      spec.env.service = kDiskServices[rng.next_below(kDiskServices.size())];
      // 199.1k..199.9k MB off the 200k baseline leaves 100..900 MB free —
      // under the absolute "below 1 GB" health rule.  (The relative window
      // test cannot see a fault active for the whole capture: its baseline
      // samples are equally depressed.)
      spec.env.intensity = 199'100.0 + 800.0 * rng.next_double();
      env_window(spec.env);
      spec.faults.push_back(sample_fault_calling(catalog, spec.env.service,
                                                 spec.window_s, rng));
      break;
    }

    case FaultClass::EnvDaemonCrash: {
      const auto& site = kCrashSites[rng.next_below(kCrashSites.size())];
      spec.env.kind = EnvFault::Kind::DaemonCrash;
      spec.env.service = site.service;
      spec.env.daemon = site.daemon;
      env_window(spec.env);
      spec.faults.push_back(sample_plain_fault(catalog, spec.window_s, rng));
      break;
    }

    case FaultClass::EnvLinkLatency: {
      spec.env.kind = EnvFault::Kind::LinkLatency;
      spec.env.service = kLinkServices[rng.next_below(kLinkServices.size())];
      spec.env.intensity = 20.0 + 100.0 * rng.next_double();  // extra ms
      env_window(spec.env);
      spec.faults.push_back(sample_plain_fault(catalog, spec.window_s, rng));
      break;
    }

    case FaultClass::WireChaos: {
      spec.faults.push_back(sample_plain_fault(catalog, spec.window_s, rng));
      auto& w = spec.wire;
      w.drop_rate = 0.01 + 0.05 * rng.next_double();
      w.truncate_rate = 0.05 * rng.next_double();
      w.corrupt_rate = 0.04 * rng.next_double();
      w.duplicate_rate = 0.03 * rng.next_double();
      w.reorder_rate = 0.03 * rng.next_double();
      if (rng.chance(0.25)) w.burst_rate = 0.002 + 0.004 * rng.next_double();
      if (rng.chance(0.25)) w.clock_skew_max_ms = 20.0 * rng.next_double();
      break;
    }

    case FaultClass::MonitorChaos: {
      const auto& site = kCrashSites[rng.next_below(kCrashSites.size())];
      spec.env.kind = EnvFault::Kind::DaemonCrash;
      spec.env.service = site.service;
      spec.env.daemon = site.daemon;
      env_window(spec.env);
      spec.faults.push_back(sample_plain_fault(catalog, spec.window_s, rng));
      auto& m = spec.monitor;
      m.probe_drop_rate = 0.02 + 0.08 * rng.next_double();
      m.probe_timeout_rate = 0.02 + 0.06 * rng.next_double();
      m.probe_delay_rate = 0.04 * rng.next_double();
      m.false_positive_rate = 0.02 * rng.next_double();
      m.false_negative_rate = 0.02 * rng.next_double();
      break;
    }

    case FaultClass::MultiIndependent: {
      const std::size_t n =
          2 + (max_faults > 2 ? rng.next_below(max_faults - 1) : 0);
      // Distinct operations: two faults in the same template would be one
      // fault to the detector's suppression logic.  Bounded attempts so a
      // tiny catalog cannot spin.
      for (int tries = 0; tries < 64 && spec.faults.size() < n; ++tries) {
        auto f = sample_plain_fault(catalog, spec.window_s, rng);
        bool dup = false;
        for (const auto& g : spec.faults) dup |= g.op_index == f.op_index;
        if (!dup) spec.faults.push_back(f);
      }
      break;
    }

    case FaultClass::Cascade: {
      const auto& site = kCrashSites[rng.next_below(kCrashSites.size())];
      spec.env.kind = EnvFault::Kind::DaemonCrash;
      spec.env.service = site.service;
      spec.env.daemon = site.daemon;
      env_window(spec.env);
      // Several dependent failures downstream of the one root cause.
      const std::size_t n = std::max<std::size_t>(2, max_faults);
      for (std::size_t i = 0; i < n && spec.faults.size() < max_faults + 1;
           ++i) {
        auto f = sample_fault_calling(catalog, spec.env.service,
                                      spec.window_s, rng);
        bool dup = false;
        for (const auto& g : spec.faults) dup |= g.op_index == f.op_index;
        if (!dup) spec.faults.push_back(f);
      }
      if (spec.faults.empty()) {
        spec.faults.push_back(sample_fault_calling(catalog, spec.env.service,
                                                   spec.window_s, rng));
      }
      break;
    }
  }

  // Chaos substrates get their own derived seeds regardless of rates (a
  // zero-rate config never draws, so this is free for quiet classes).
  spec.wire.seed = derive_seed(spec.seed, SeedStream::WireChaos);
  spec.monitor.seed = derive_seed(spec.seed, SeedStream::MonitorChaos);
  return spec;
}

std::vector<ScenarioSpec> ScenarioGenerator::generate() const {
  std::vector<ScenarioSpec> out;
  out.reserve(plan_.scenarios);
  for (std::uint64_t i = 0; i < plan_.scenarios; ++i)
    out.push_back(generate_one(i));
  return out;
}

}  // namespace gretel::campaign
