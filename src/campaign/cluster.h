// Failure-mode clustering and the campaign coverage/novelty summary.
//
// Scenarios that produced the same canonical report fingerprint are the
// same failure mode — however different their injected parameters looked —
// so clustering by fingerprint collapses a thousand-scenario sweep into
// the handful of distinct behaviors the analyzer actually exhibited.  The
// summary then answers the two campaign questions: coverage (per fault
// class, how often was the fault localized vs. missed vs. misattributed
// vs. crashed?) and novelty (how many distinct failure modes exist, and
// how many are singletons — the long tail worth a human look).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "campaign/orchestrator.h"

namespace gretel::campaign {

// One failure-mode cluster: every member scenario produced this exact
// canonical fingerprint.
struct Cluster {
  std::uint64_t fingerprint = 0;
  std::size_t size = 0;
  std::uint64_t example_id = 0;  // lowest member scenario id
  FaultClass example_class = FaultClass::OpError;
  Outcome example_outcome = Outcome::Missed;
};

struct ClassCoverage {
  std::size_t scenarios = 0;
  std::size_t outcomes[kOutcomes] = {};  // indexed by Outcome
  std::size_t env_expected = 0;
  std::size_t env_localized = 0;
  std::size_t distinct_fingerprints = 0;
};

struct CampaignSummary {
  std::size_t scenarios = 0;
  std::size_t outcomes[kOutcomes] = {};
  ClassCoverage per_class[kFaultClasses] = {};

  // Clusters sorted by size (desc), then fingerprint — stable across runs.
  std::vector<Cluster> clusters;
  std::size_t distinct_fingerprints = 0;
  std::size_t singleton_fingerprints = 0;

  std::uint64_t audit_shed = 0;       // capped-log entries shed, summed
  std::size_t budget_truncated = 0;   // scenarios clipped by the budget

  double localized_fraction() const {
    return scenarios
               ? static_cast<double>(
                     outcomes[static_cast<std::size_t>(Outcome::Localized)]) /
                     static_cast<double>(scenarios)
               : 0.0;
  }
};

CampaignSummary summarize(std::span<const ScenarioResult> results);

// Appends the summary as a JSON object: totals, per-class coverage table,
// and the cluster list.  Callers wrap it into their own document (the
// bench adds its meta block; the CLI emits it standalone).
void append_summary_json(std::string& out, const CampaignSummary& summary);

}  // namespace gretel::campaign
