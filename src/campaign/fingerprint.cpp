#include "campaign/fingerprint.h"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "gretel/json_export.h"

namespace gretel::campaign {

std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ull;
  }
  return h;
}

std::string canonical_report(const core::Diagnosis& d,
                             const wire::ApiCatalog& catalog,
                             const core::FingerprintDb& db) {
  std::string out;
  out += "{\"kind\":\"";
  out += d.fault.kind == core::FaultKind::Operational ? "operational"
                                                      : "performance";
  out += "\",\"api\":\"";
  out += core::json_escape(catalog.get(d.fault.offending_api).display_name());
  out += '"';

  // Matched operations by *name*, sorted: the match set is a set, and DB
  // index order is a training artifact, not part of the conclusion.
  std::vector<std::string> matched;
  matched.reserve(d.fault.matched_fingerprints.size());
  for (auto idx : d.fault.matched_fingerprints)
    matched.push_back(db.get(idx).name);
  std::sort(matched.begin(), matched.end());
  out += ",\"matched\":[";
  for (std::size_t i = 0; i < matched.size(); ++i) {
    if (i) out += ',';
    out += '"';
    out += core::json_escape(matched[i]);
    out += '"';
  }
  out += ']';

  if (d.fault.latency) {
    out += ",\"latency\":\"";
    out += d.fault.latency->alarm.direction == detect::ShiftDirection::Up
               ? "up"
               : "down";
    out += '"';
  }
  if (d.fault.degraded_confidence) out += ",\"degraded_confidence\":true";

  out += ",\"root_cause\":{";
  bool first = true;
  auto flag = [&](const char* name) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += name;
    out += "\":true";
  };
  if (d.root_cause.expanded_search) flag("expanded_search");
  if (d.root_cause.degraded) flag("degraded");
  if (d.root_cause.monitoring_degraded) flag("monitoring_degraded");
  if (d.root_cause.stale_series) {
    if (!first) out += ',';
    first = false;
    out += "\"stale_series\":";
    out += std::to_string(d.root_cause.stale_series);
  }

  // Evidence gaps as (node, dependency, status), deduplicated upstream;
  // sorted here because gap discovery order follows probe scheduling.
  auto gaps = d.root_cause.evidence_gaps;
  std::sort(gaps.begin(), gaps.end(), [](const auto& a, const auto& b) {
    if (a.node.value() != b.node.value())
      return a.node.value() < b.node.value();
    if (a.dependency != b.dependency) return a.dependency < b.dependency;
    return static_cast<std::uint8_t>(a.status) <
           static_cast<std::uint8_t>(b.status);
  });
  if (!gaps.empty()) {
    if (!first) out += ',';
    first = false;
    out += "\"gaps\":[";
    for (std::size_t i = 0; i < gaps.size(); ++i) {
      if (i) out += ',';
      out += "{\"node\":";
      out += std::to_string(gaps[i].node.value());
      out += ",\"dependency\":\"";
      out += core::json_escape(gaps[i].dependency);
      out += "\",\"status\":\"";
      out += monitor::to_string(gaps[i].status);
      out += "\"}";
    }
    out += ']';
  }

  // Causes in canonical order (kind, node, detail, evidence), serialized
  // through the same append_cause_json vocabulary as the operator export
  // but with score/confidence-free ordering.  append_cause_json itself
  // emits `confidence` for weak evidence; that value is derived one-to-one
  // from the evidence status, so it cannot introduce volatility.
  auto causes = d.root_cause.causes;
  std::sort(causes.begin(), causes.end(), core::cause_canonical_less);
  if (!first) out += ',';
  out += "\"causes\":[";
  for (std::size_t i = 0; i < causes.size(); ++i) {
    if (i) out += ',';
    core::append_cause_json(out, causes[i]);
  }
  out += "]}}";
  return out;
}

std::uint64_t report_fingerprint(std::span<const core::Diagnosis> diagnoses,
                                 const wire::ApiCatalog& catalog,
                                 const core::FingerprintDb& db) {
  std::vector<std::string> canon;
  canon.reserve(diagnoses.size());
  for (const auto& d : diagnoses)
    canon.push_back(canonical_report(d, catalog, db));
  std::sort(canon.begin(), canon.end());
  std::string all = "[";
  for (std::size_t i = 0; i < canon.size(); ++i) {
    if (i) all += ',';
    all += canon[i];
  }
  all += ']';
  return fnv1a64(all);
}

std::string fingerprint_hex(std::uint64_t fp) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(fp));
  return buf;
}

}  // namespace gretel::campaign
