// Scenario vocabulary of the fault-campaign engine.
//
// A scenario is one fully-specified end-to-end experiment: a background
// workload mix, one or more injected faults (workload errors, environmental
// perturbations, wire chaos, monitoring chaos — alone or combined), and the
// derived seeds that make the whole run reproducible from the campaign
// seed.  The generator (generator.h) enumerates/samples these; the
// orchestrator (orchestrator.h) runs each one through the full
// capture→detect→diagnose pipeline and scores the outcome.
//
// Scenario classes follow the fault-injection-analytics methodology of
// arXiv:2010.00331 (sweep generated campaigns, cluster the failure modes)
// and include the multi-fault shapes that arXiv's failure-propagation work
// motivates: concurrent-independent faults and correlated cascades where
// one environmental root cause drives several workload failures.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/chaos.h"
#include "monitor/probe.h"
#include "wire/api.h"

namespace gretel::campaign {

// The campaign's fault-space axes, as coverage classes.  Single-fault
// classes are the paper's Fig. 8 table stakes; WireChaos/MonitorChaos
// stress the telemetry substrates; MultiIndependent and Cascade are the
// multi-fault shapes.
enum class FaultClass : std::uint8_t {
  OpError,           // one operational REST/RPC error
  EnvCpuSurge,       // CPU surge + correlated operational error
  EnvDiskExhaustion, // disk exhaustion + correlated operational error
  EnvDaemonCrash,    // daemon crash + correlated operational error
  EnvLinkLatency,    // injected link latency + correlated operational error
  WireChaos,         // operational error observed through a degraded tap
  MonitorChaos,      // daemon crash + op error, monitoring plane degraded
  MultiIndependent,  // concurrent unrelated operational errors
  Cascade,           // one env root cause, several dependent op errors
};
inline constexpr std::size_t kFaultClasses = 9;

const char* to_string(FaultClass c);

// One injected workload fault: operation `op_index` of the catalog fails at
// `fail_step` with `status`, launched `start_offset_s` into the window.
struct InjectedFault {
  std::size_t op_index = 0;
  std::size_t fail_step = 0;
  std::uint16_t status = 500;
  double start_offset_s = 0.0;
};

// The environmental half of a correlated scenario (env classes, Cascade,
// MonitorChaos): a perturbation of `service`'s node(s) that is the ground
// truth root cause the analyzer should localize.
struct EnvFault {
  enum class Kind : std::uint8_t {
    None,
    CpuSurge,        // intensity = delta percentage points
    DiskExhaustion,  // intensity = free-MB drop
    DaemonCrash,     // daemon names the crashed software
    LinkLatency,     // intensity = extra one-way latency in ms
  };
  Kind kind = Kind::None;
  wire::ServiceKind service = wire::ServiceKind::Nova;
  std::string daemon;       // DaemonCrash only
  double intensity = 0.0;
  double start_s = 0.0;     // relative to the workload window start
  double duration_s = 0.0;  // 0 = whole run
};

struct ScenarioSpec {
  std::uint64_t id = 0;
  FaultClass fault_class = FaultClass::OpError;
  // Per-scenario root seed, splitmix64-derived from the campaign seed
  // (util/seed.h); every RNG consumer forks its own stream off this.
  std::uint64_t seed = 0;

  // Workload mix.
  int concurrent_tests = 12;
  double window_s = 45.0;

  std::vector<InjectedFault> faults;
  EnvFault env;

  // Telemetry-substrate chaos; zero-rate (strict no-op) unless the class
  // exercises that substrate.
  net::ChaosConfig wire;
  monitor::MonitorChaosConfig monitor;

  bool has_env() const { return env.kind != EnvFault::Kind::None; }
  bool multi_fault() const { return faults.size() > 1; }
};

}  // namespace gretel::campaign
