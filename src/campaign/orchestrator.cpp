#include "campaign/orchestrator.h"

#include <algorithm>
#include <exception>
#include <optional>
#include <unordered_map>

#include "gretel/analyzer.h"
#include "monitor/metrics.h"
#include "net/chaos.h"
#include "stream/stream_analyzer.h"
#include "tempest/workload.h"
#include "util/seed.h"

namespace gretel::campaign {

using util::SeedStream;
using util::SimDuration;
using util::SimTime;
using util::derive_seed;

const char* to_string(Outcome o) {
  switch (o) {
    case Outcome::Localized: return "localized";
    case Outcome::Missed: return "missed";
    case Outcome::Misattributed: return "misattributed";
    case Outcome::Crashed: return "crashed";
  }
  return "unknown";
}

namespace {

// Applies the scenario's environmental perturbation to a fresh deployment.
void apply_env(stack::Deployment& deployment, const EnvFault& env,
               double window_s) {
  if (env.kind == EnvFault::Kind::None) return;
  const auto start = SimTime::epoch() + SimDuration::seconds(env.start_s);
  const double dur =
      env.duration_s > 0.0 ? env.duration_s : window_s + 120.0;
  const auto end = start + SimDuration::seconds(dur);
  switch (env.kind) {
    case EnvFault::Kind::None:
      break;
    case EnvFault::Kind::CpuSurge:
      deployment.inject_cpu_surge(env.service, start, end, env.intensity);
      break;
    case EnvFault::Kind::DiskExhaustion:
      deployment.inject_disk_exhaustion(env.service, start, end,
                                        env.intensity);
      break;
    case EnvFault::Kind::DaemonCrash:
      deployment.crash_software(env.service, env.daemon, start, end);
      break;
    case EnvFault::Kind::LinkLatency:
      deployment.inject_link_latency(env.service, start, end,
                                     SimDuration::millis(env.intensity));
      break;
  }
}

// Did the analyzer pin the expected environmental cause?  Matches on
// node-of-service plus the cause vocabulary the root-cause engine emits
// (resource detail prefixes, daemon names for software failures).
bool env_cause_found(const stack::Deployment& deployment, const EnvFault& env,
                     const std::vector<core::Diagnosis>& diagnoses) {
  const auto nodes = deployment.nodes_for(env.service);
  const auto on_env_node = [&](wire::NodeId n) {
    return std::find(nodes.begin(), nodes.end(), n) != nodes.end();
  };
  for (const auto& d : diagnoses) {
    for (const auto& c : d.root_cause.causes) {
      if (!on_env_node(c.node)) continue;
      switch (env.kind) {
        case EnvFault::Kind::CpuSurge:
          if (c.kind == core::CauseKind::ResourceAnomaly &&
              c.detail.find("cpu") != std::string::npos)
            return true;
          break;
        case EnvFault::Kind::DiskExhaustion:
          if (c.kind == core::CauseKind::ResourceAnomaly &&
              c.detail.find("disk") != std::string::npos)
            return true;
          break;
        case EnvFault::Kind::DaemonCrash:
          if (c.kind == core::CauseKind::SoftwareFailure &&
              c.detail == env.daemon)
            return true;
          break;
        default:
          break;
      }
    }
  }
  return false;
}

bool any_cause(const std::vector<core::Diagnosis>& diagnoses) {
  for (const auto& d : diagnoses) {
    if (!d.root_cause.causes.empty()) return true;
  }
  return false;
}

}  // namespace

CampaignOrchestrator::CampaignOrchestrator(
    const tempest::TempestCatalog* catalog,
    const core::TrainingReport* training, CampaignPlan plan)
    : catalog_(catalog), training_(training), plan_(plan) {}

ScenarioResult CampaignOrchestrator::run_guarded(
    const ScenarioSpec& spec) const {
  ScenarioResult result;
  result.id = spec.id;
  result.fault_class = spec.fault_class;
  result.faults_total = spec.faults.size();
  result.env_expected = spec.has_env();

  const auto& catalog = *catalog_;
  auto deployment = stack::Deployment::standard(3);
  apply_env(deployment, spec.env, spec.window_s);

  // Background mix, faults riding on top.  The generator owns fault
  // placement, so the workload itself is sampled fault-free.
  tempest::WorkloadSpec wspec;
  wspec.concurrent_tests = spec.concurrent_tests;
  wspec.faults = 0;
  wspec.window = SimDuration::seconds(spec.window_s);
  wspec.seed = derive_seed(spec.seed, SeedStream::Workload);
  auto workload = tempest::make_parallel_workload(catalog, wspec);
  for (const auto& f : spec.faults) {
    workload.faulty_launch_idx.push_back(workload.launches.size());
    workload.launches.push_back(
        {&catalog.operation(f.op_index),
         SimTime::epoch() + SimDuration::seconds(f.start_offset_s),
         stack::fault_for_status(f.fail_step, f.status)});
  }

  stack::WorkflowExecutor executor(&deployment, &catalog.apis(),
                                   &catalog.infra(),
                                   derive_seed(spec.seed,
                                               SeedStream::Executor));
  const auto records = executor.execute(workload.launches);
  if (records.empty()) {
    result.outcome = Outcome::Crashed;
    result.note = "empty capture";
    return result;
  }

  // Wire-substrate chaos, with exact audit/counter reconciliation.
  std::vector<net::WireRecord> degraded;
  degraded.reserve(records.size());
  net::ChaosTap tap(spec.wire,
                    [&](const net::WireRecord& r) { degraded.push_back(r); });
  for (const auto& r : records) tap.on_record(r);
  tap.finish();
  const auto& cs = tap.stats();
  if (cs.records_in != records.size() ||
      cs.records_out != degraded.size() ||
      cs.records_in - cs.total_dropped() + cs.duplicated !=
          cs.records_out) {
    result.outcome = Outcome::Crashed;
    result.note = "wire chaos counter reconciliation failed";
    return result;
  }
  const auto& audit = tap.audit();
  result.audit_shed += audit.dropped();
  if (audit.dropped() == 0) {
    // Entry list is complete: per-action audit totals must equal stats.
    std::uint64_t per_action[9] = {};
    for (const auto& inj : audit)
      ++per_action[static_cast<std::size_t>(inj.action)];
    const bool ok =
        per_action[0] == cs.dropped_uniform &&
        per_action[1] == cs.dropped_burst && per_action[2] == cs.truncated &&
        per_action[3] == cs.corrupted && per_action[4] == cs.duplicated &&
        per_action[5] == cs.reordered && per_action[7] == cs.stalls &&
        per_action[8] == cs.dropped_stall;
    if (!ok) {
      result.outcome = Outcome::Crashed;
      result.note = "wire chaos audit reconciliation failed";
      return result;
    }
  }

  // Event budget: a campaign cannot let one pathological scenario starve
  // the sweep, so the analyzed stream is clipped (in arrival order — the
  // tail is what a saturated pipeline would shed last).
  if (plan_.budget_events > 0 && degraded.size() > plan_.budget_events) {
    degraded.resize(plan_.budget_events);
    result.budget_truncated = true;
  }
  result.events = degraded.size();

  const double span = degraded.empty()
                          ? 0.0
                          : (degraded.back().ts - degraded.front().ts)
                                .to_seconds();
  const double p_rate =
      span > 0 ? static_cast<double>(degraded.size()) / span : 150.0;

  core::Analyzer::Options opt;
  opt.config.fp_max = training_->fp_max;
  opt.config.p_rate = std::max(p_rate, 150.0);
  opt.run_root_cause = true;
  if (spec.monitor.enabled()) {
    opt.probed_monitoring = true;
    opt.monitor_chaos = spec.monitor;
  }
  if (plan_.streaming && plan_.stream_tick_ms > 0.0)
    opt.config.stream_tick_ms = plan_.stream_tick_ms;

  // Streaming execution reuses the exact batch pipeline behind the
  // StreamAnalyzer front end; scoring below reads whichever diagnosis set
  // the chosen path produced.
  std::optional<core::Analyzer> batch;
  std::optional<stream::StreamAnalyzer> streamer;
  std::vector<core::Diagnosis> streamed;
  util::SimTime first_report_at;
  bool saw_report = false;
  if (plan_.streaming) {
    streamer.emplace(&training_->db, &catalog.apis(), &deployment, opt,
                     [&](const stream::StreamReport& r) {
                       if (!saw_report) {
                         saw_report = true;
                         first_report_at = r.emitted_at;
                       }
                       streamed.push_back(r.diagnosis);
                     });
  } else {
    batch.emplace(&training_->db, &catalog.apis(), &deployment, opt);
  }
  core::Analyzer& analyzer = plan_.streaming ? streamer->analyzer() : *batch;

  monitor::ResourceMonitor mon(&deployment, SimDuration::seconds(1),
                               derive_seed(spec.seed, SeedStream::Metrics));
  mon.sample_range(SimTime::epoch(),
                   records.back().ts + SimDuration::seconds(3),
                   analyzer.metrics());

  if (plan_.streaming) {
    for (const auto& r : degraded) {
      streamer->advance_to(r.ts);
      streamer->offer(r);
    }
    streamer->finish();
    const auto& sc = streamer->counters();
    result.stream_ticks = sc.ticks;
    result.stream_shed = sc.shed;
    // Flow reconciliation: every offered record is ingested or shed, and
    // finish() left nothing queued.  A mismatch means the admission
    // bookkeeping lied — a Crashed outcome like the other ledgers.
    if (sc.offered != sc.ingested + sc.shed || streamer->queued() != 0) {
      result.outcome = Outcome::Crashed;
      result.note = "stream shed/ingest reconciliation failed";
      return result;
    }
    if (saw_report && !spec.faults.empty()) {
      double first_fault_s = spec.faults.front().start_offset_s;
      for (const auto& f : spec.faults)
        first_fault_s = std::min(first_fault_s, f.start_offset_s);
      const auto injected =
          SimTime::epoch() +
          SimDuration::nanos(static_cast<std::int64_t>(first_fault_s * 1e9));
      result.first_report_latency_ms =
          std::max(0.0, (first_report_at - injected).to_millis());
    }
  } else {
    for (const auto& r : degraded) analyzer.on_wire(r);
    analyzer.finish();
  }

  // Decode-side reconciliation: every quarantined frame must trace back to
  // an injected truncation/corruption, and the health counters must agree
  // with the tap's decode ledger.  (No lower bound: a cut or byte flip
  // that only touches bytes the codec never reads decodes cleanly.  The
  // upper bound admits duplicates — a duplicated damaged frame fails
  // decode once per delivered copy.)
  const auto health = analyzer.health();
  const auto decode_failures = analyzer.tap_stats().decode_failures;
  if (decode_failures > cs.truncated + cs.corrupted + cs.duplicated ||
      health.frames_quarantined != decode_failures) {
    result.outcome = Outcome::Crashed;
    result.note = "decode/quarantine reconciliation failed: " +
                  std::to_string(decode_failures) + " failures vs " +
                  std::to_string(cs.truncated) + " truncated + " +
                  std::to_string(cs.corrupted) + " corrupted, " +
                  std::to_string(health.frames_quarantined) + " quarantined";
    return result;
  }

  // Monitoring-plane reconciliation (probed runs): the probe counters must
  // account for exactly the injections the chaos engine recorded.
  if (opt.probed_monitoring) {
    const auto ps = analyzer.watcher().probe_stats();
    const auto& w = analyzer.watcher();
    using MA = monitor::MonitorChaosAction;
    const bool ok =
        ps.drops == w.chaos_count(MA::ProbeDrop) &&
        ps.timeouts ==
            w.chaos_count(MA::ProbeTimeout) + w.chaos_count(MA::ProbeDelay) &&
        ps.false_results == w.chaos_count(MA::FalsePositive) +
                                w.chaos_count(MA::FalseNegative);
    if (!ok) {
      result.outcome = Outcome::Crashed;
      result.note = "monitor chaos counter reconciliation failed";
      return result;
    }
    result.audit_shed += w.chaos_audit_dropped();
  }

  const auto& diagnoses = plan_.streaming ? streamed : analyzer.diagnoses();
  result.diagnoses = diagnoses.size();
  result.fingerprint =
      report_fingerprint(diagnoses, catalog.apis(), training_->db);

  // Per-fault scoring via ground-truth instance labels (a fresh executor
  // assigns instance i+1 to launches[i]); error anchoring first so
  // overlapping windows cannot steal each other's reports.
  std::unordered_map<std::uint32_t, const core::FaultReport*> by_instance;
  for (const auto& d : diagnoses) {
    for (const auto& ev : d.fault.error_events) {
      if (!ev.is_error() || !ev.truth_instance.valid()) continue;
      if (ev.api != d.fault.offending_api) continue;
      by_instance.try_emplace(ev.truth_instance.value(), &d.fault);
    }
  }
  for (const auto& d : diagnoses) {
    for (const auto& ev : d.fault.error_events) {
      if (!ev.is_error() || !ev.truth_instance.valid()) continue;
      by_instance.try_emplace(ev.truth_instance.value(), &d.fault);
    }
  }
  for (auto launch_idx : workload.faulty_launch_idx) {
    const auto it =
        by_instance.find(static_cast<std::uint32_t>(launch_idx + 1));
    if (it == by_instance.end()) continue;
    ++result.faults_detected;
    const auto truth = workload.launches[launch_idx].op->id;
    for (auto idx : it->second->matched_fingerprints) {
      if (training_->db.get(idx).op == truth) {
        ++result.faults_identified;
        break;
      }
    }
  }

  if (spec.has_env())
    result.env_localized = env_cause_found(deployment, spec.env, diagnoses);

  // Link latency is a recognized blind spot — no resource metric or
  // watcher observes it, so the class is scored on workload-fault
  // localization alone and the coverage report surfaces env_localized.
  const bool env_scoreable =
      spec.has_env() && spec.env.kind != EnvFault::Kind::LinkLatency;

  if (result.faults_detected < result.faults_total) {
    result.outcome = Outcome::Missed;
  } else if (result.faults_identified < result.faults_detected) {
    result.outcome = Outcome::Misattributed;
  } else if (env_scoreable && !result.env_localized) {
    result.outcome =
        any_cause(diagnoses) ? Outcome::Misattributed : Outcome::Missed;
  } else {
    result.outcome = Outcome::Localized;
  }
  return result;
}

ScenarioResult CampaignOrchestrator::run(const ScenarioSpec& spec) const {
  try {
    return run_guarded(spec);
  } catch (const std::exception& e) {
    ScenarioResult result;
    result.id = spec.id;
    result.fault_class = spec.fault_class;
    result.faults_total = spec.faults.size();
    result.env_expected = spec.has_env();
    result.outcome = Outcome::Crashed;
    result.note = e.what();
    return result;
  }
}

std::vector<ScenarioResult> CampaignOrchestrator::run_all(
    std::span<const ScenarioSpec> specs) const {
  std::vector<ScenarioResult> out;
  out.reserve(specs.size());
  for (const auto& spec : specs) out.push_back(run(spec));
  return out;
}

}  // namespace gretel::campaign
