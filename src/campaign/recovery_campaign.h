// Kill-point recovery campaigns: crash the streaming analyzer on purpose,
// restore it from disk, and assert the durability invariant every round.
//
// Each round runs a seeded fault workload through a durable StreamAnalyzer
// and deterministically kills it at one of the kill points below (cycling
// through all of them across rounds).  The process-death simulation is
// in-process: the persist layer's crash fail points leave the exact
// partial on-disk artifact a real crash at that instruction would
// (persist/crash_hook.h), the analyzer object is discarded — in-memory
// state is lost, exactly like SIGKILL — and StreamAnalyzer::restore()
// rebuilds from the surviving files alone.
//
// Invariant asserted per round (docs/ARCHITECTURE.md, "Durability &
// recovery"):
//   1. Zero journaled reports are lost: every report the sink saw before
//      the crash is on disk, byte-identical, with exact sequence numbers
//      (the journal fsyncs before the sink is called).
//   2. At most one checkpoint interval (plus one tick of quantization) of
//      learned baseline regresses: the restored watermark trails the
//      crash watermark by no more than checkpoint_interval_s + tick.
//   3. The flow ledger re-reconciles after restart:
//      offered == ingested + shed with queued() == 0, both immediately
//      after restore() and again after the stream is resumed and finished.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gretel/training.h"
#include "tempest/catalog.h"

namespace gretel::campaign {

// Where the crash lands.  The first is a plain kill between ticks (no
// torn artifact); the middle four arm the persist layer's named fail
// points; the last simulates a fingerprint-DB hot swap torn mid-write.
enum class KillPoint : std::uint8_t {
  BetweenTicks,          // SIGKILL between ticks: clean files, lost memory
  MidJournalAppend,      // torn journal record (never acknowledged)
  MidCheckpointWrite,    // truncated checkpoint .tmp, dest untouched
  PreCheckpointRename,   // complete orphaned .tmp, dest untouched
  PostCheckpointRename,  // checkpoint durable, old files unpruned
  DuringDbSwap,          // torn GRTFDB02 left by a crashed hot swap
};
inline constexpr std::size_t kKillPoints = 6;
const char* to_string(KillPoint p);

struct RecoveryRoundResult {
  std::uint64_t round = 0;
  KillPoint kill_point = KillPoint::BetweenTicks;
  bool crashed = false;  // the kill actually fired this round

  // The three invariant legs, plus their conjunction.
  bool reports_durable = false;
  bool baseline_bounded = false;
  bool ledger_ok = false;
  bool invariant_ok = false;

  bool recovered = false;  // restore() applied a checkpoint
  std::uint64_t reports_pre_crash = 0;   // sink deliveries before the kill
  std::uint64_t reports_journaled = 0;   // durable records found on disk
  std::uint64_t reports_replayed = 0;    // journal tail past the checkpoint
  std::uint64_t reports_final = 0;       // total after the resumed run
  std::size_t corrupt_checkpoints_skipped = 0;
  std::size_t journal_records_truncated = 0;
  double baseline_regressed_s = 0.0;  // crash watermark - resume floor
  double recovery_ms = 0.0;           // wall time of restore()
  std::size_t state_bytes = 0;        // checkpoint file size restored from
  std::string note;  // first failed assertion, else empty
};

struct RecoveryCampaignConfig {
  std::uint64_t seed = 42;
  // Kill rounds; kill points cycle so every point is hit when
  // rounds >= kKillPoints.
  std::size_t rounds = 12;
  int concurrent_tests = 8;
  double window_s = 45.0;
  double stream_tick_ms = 200.0;
  double checkpoint_interval_s = 2.0;
  // Small segments so rounds exercise rotation + purge, not just one file.
  std::size_t journal_segment_records = 8;
  // Root directory for per-round persistence subdirs (wiped per round).
  std::string dir = "recovery-campaign";
};

struct RecoveryCampaignReport {
  std::vector<RecoveryRoundResult> rounds;
  std::size_t crashes = 0;             // rounds where the kill fired
  std::size_t recovered = 0;           // rounds restored from a checkpoint
  std::size_t invariant_failures = 0;  // rounds failing any invariant leg
  bool all_ok() const { return invariant_failures == 0; }
};

class RecoveryCampaign {
 public:
  RecoveryCampaign(const tempest::TempestCatalog* catalog,
                   const core::TrainingReport* training,
                   RecoveryCampaignConfig cfg);

  RecoveryCampaignReport run();

 private:
  RecoveryRoundResult run_round(std::uint64_t round, KillPoint point);

  const tempest::TempestCatalog* catalog_;
  const core::TrainingReport* training_;
  RecoveryCampaignConfig cfg_;
};

}  // namespace gretel::campaign
