#include "campaign/recovery_campaign.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <memory>

#include "campaign/generator.h"
#include "gretel/analyzer.h"
#include "gretel/db_io.h"
#include "gretel/json_export.h"
#include "persist/checkpoint.h"
#include "persist/crash_hook.h"
#include "stream/stream_analyzer.h"
#include "tempest/workload.h"
#include "util/rng.h"
#include "util/seed.h"

namespace gretel::campaign {

using util::SeedStream;
using util::SimDuration;
using util::SimTime;
using util::derive_seed;

const char* to_string(KillPoint p) {
  switch (p) {
    case KillPoint::BetweenTicks: return "between-ticks";
    case KillPoint::MidJournalAppend: return "mid-journal-append";
    case KillPoint::MidCheckpointWrite: return "mid-checkpoint-write";
    case KillPoint::PreCheckpointRename: return "pre-checkpoint-rename";
    case KillPoint::PostCheckpointRename: return "post-checkpoint-rename";
    case KillPoint::DuringDbSwap: return "during-db-swap";
  }
  return "unknown";
}

namespace {

// Named persist fail point for a kill point; empty for the manual kills.
std::string_view fail_point(KillPoint p) {
  switch (p) {
    case KillPoint::MidJournalAppend: return "journal.append";
    case KillPoint::MidCheckpointWrite: return "checkpoint.mid_write";
    case KillPoint::PreCheckpointRename: return "checkpoint.pre_rename";
    case KillPoint::PostCheckpointRename: return "checkpoint.post_rename";
    default: return {};
  }
}

// RAII: a hook left armed after a round would crash the next one.
struct HookGuard {
  ~HookGuard() { persist::clear_crash_hook(); }
};

}  // namespace

RecoveryCampaign::RecoveryCampaign(const tempest::TempestCatalog* catalog,
                                   const core::TrainingReport* training,
                                   RecoveryCampaignConfig cfg)
    : catalog_(catalog), training_(training), cfg_(std::move(cfg)) {}

RecoveryRoundResult RecoveryCampaign::run_round(std::uint64_t round,
                                                KillPoint point) {
  RecoveryRoundResult res;
  res.round = round;
  res.kill_point = point;
  const std::uint64_t seed = derive_seed(cfg_.seed, SeedStream::Scenario,
                                         round);

  // Seeded fault workload, sampled by the campaign generator so the
  // rounds exercise real report-producing scenarios; substrate chaos is
  // zeroed — this campaign crashes the analyzer, not the telemetry.
  CampaignPlan plan;
  plan.seed = seed;
  plan.concurrent_tests = cfg_.concurrent_tests;
  plan.window_s = cfg_.window_s;
  ScenarioSpec spec = ScenarioGenerator(catalog_, plan).generate_one(round);
  spec.wire = net::ChaosConfig{};
  spec.monitor = monitor::MonitorChaosConfig{};
  spec.concurrent_tests = cfg_.concurrent_tests;
  spec.window_s = cfg_.window_s;

  const auto& catalog = *catalog_;
  auto deployment = stack::Deployment::standard(3);

  tempest::WorkloadSpec wspec;
  wspec.concurrent_tests = spec.concurrent_tests;
  wspec.faults = 0;
  wspec.window = SimDuration::seconds(spec.window_s);
  wspec.seed = derive_seed(seed, SeedStream::Workload);
  auto workload = tempest::make_parallel_workload(catalog, wspec);
  for (const auto& f : spec.faults) {
    workload.launches.push_back(
        {&catalog.operation(f.op_index),
         SimTime::epoch() + SimDuration::seconds(f.start_offset_s),
         stack::fault_for_status(f.fail_step, f.status)});
  }
  stack::WorkflowExecutor executor(&deployment, &catalog.apis(),
                                   &catalog.infra(),
                                   derive_seed(seed, SeedStream::Executor));
  const auto records = executor.execute(workload.launches);
  if (records.empty()) {
    res.note = "empty capture";
    return res;
  }

  const std::string dir = cfg_.dir + "/round-" + std::to_string(round);
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);

  const double span =
      (records.back().ts - records.front().ts).to_seconds();
  core::Analyzer::Options opt;
  opt.config.fp_max = training_->fp_max;
  opt.config.p_rate =
      std::max(span > 0 ? records.size() / span : 150.0, 150.0);
  opt.config.stream_tick_ms = cfg_.stream_tick_ms;
  opt.config.checkpoint_interval_s = cfg_.checkpoint_interval_s;
  opt.config.journal_segment_records = cfg_.journal_segment_records;
  opt.run_root_cause = false;
  const core::Analyzer::Options opt_restore = opt;  // opt is moved below

  // The sink records exactly what was acknowledged pre-crash, as the same
  // JSON the journal writes, indexed by delivery order == journal seq.
  std::vector<std::string> acked;
  auto analyzer = std::make_unique<stream::StreamAnalyzer>(
      &training_->db, &catalog.apis(), &deployment, std::move(opt),
      [&](const stream::StreamReport& r) {
        acked.push_back(core::to_json(r.diagnosis, catalog.apis(),
                                      training_->db));
      });
  if (!analyzer->enable_durability(dir)) {
    res.note = "enable_durability failed";
    return res;
  }

  // Arm the kill.  Named fail points fire on their Nth hit (seeded, so
  // the crash lands after some durable state exists); the manual kills
  // stop feeding at a seeded record index — exactly what SIGKILL between
  // ticks leaves behind.
  util::Rng rng(derive_seed(seed, SeedStream::Generator));
  const std::string_view fp = fail_point(point);
  std::size_t hits_left = 1 + rng.next_below(2);
  HookGuard hook_guard;
  if (!fp.empty()) {
    persist::set_crash_hook([&](std::string_view p) {
      return p == fp && --hits_left == 0;
    });
  }
  const std::size_t kill_at =
      records.size() / 3 + rng.next_below(std::max<std::size_t>(
                               1, records.size() / 3));

  try {
    for (std::size_t i = 0; i < records.size(); ++i) {
      if (fp.empty() && i == kill_at) {
        res.crashed = true;
        break;
      }
      analyzer->advance_to(records[i].ts);
      analyzer->offer(records[i]);
    }
    if (!res.crashed) analyzer->finish();
  } catch (const persist::SimulatedCrash&) {
    res.crashed = true;
  }
  persist::clear_crash_hook();
  const SimTime crash_watermark = analyzer->watermark();
  const SimTime stream_start =
      SimTime((records.front().ts.nanos() /
               static_cast<std::int64_t>(cfg_.stream_tick_ms * 1e6)) *
              static_cast<std::int64_t>(cfg_.stream_tick_ms * 1e6));
  res.reports_pre_crash = acked.size();

  // Process death: the object goes away, only the files survive.
  analyzer.reset();

  if (point == KillPoint::DuringDbSwap) {
    // A fingerprint-DB hot swap died mid-write, leaving a torn GRTFDB02.
    // The CRC sections must reject it — the loader falls back to the DB
    // it already has instead of trusting half a file.
    const std::string swap_path = dir + "/fingerprints.swap.grtfdb";
    const std::string encoded =
        core::encode_fingerprint_db(training_->db, catalog.apis());
    if (std::FILE* f = std::fopen(swap_path.c_str(), "wb")) {
      std::fwrite(encoded.data(), 1, encoded.size() / 2, f);
      std::fclose(f);
    }
    if (core::load_fingerprint_db(swap_path, catalog.apis())) {
      res.note = "torn fingerprint DB accepted by loader";
      return res;
    }
  }

  // Restore from disk alone.
  stream::RecoveryInfo ri;
  const auto t0 = std::chrono::steady_clock::now();
  auto restored = stream::StreamAnalyzer::restore(
      &training_->db, &catalog.apis(), &deployment, opt_restore, dir,
      [&](const stream::StreamReport& r) {
        acked.push_back(core::to_json(r.diagnosis, catalog.apis(),
                                      training_->db));
      },
      &ri);
  res.recovery_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  if (!restored) {
    res.note = "restore returned null";
    return res;
  }
  res.recovered = ri.recovered;
  res.corrupt_checkpoints_skipped = ri.corrupt_checkpoints_skipped;
  res.journal_records_truncated = ri.journal_records_truncated;
  res.reports_journaled = restored->journal_next_seq();
  res.reports_replayed = ri.replayed.size();
  if (ri.recovered) {
    const auto sz = std::filesystem::file_size(
        persist::checkpoint_path(dir, ri.checkpoint_seq), ec);
    if (!ec) res.state_bytes = static_cast<std::size_t>(sz);
  }

  // Invariant leg 1: zero journaled reports lost.  Every acknowledged
  // report is on disk (the journal fsyncs before the sink runs), and the
  // replayed tail is byte-identical to what the sink saw.
  res.reports_durable = res.reports_journaled == res.reports_pre_crash;
  for (const auto& rec : ri.replayed) {
    if (rec.seq >= acked.size() || rec.payload != acked[rec.seq]) {
      res.reports_durable = false;
      break;
    }
  }
  if (!res.reports_durable)
    res.note = "journaled " + std::to_string(res.reports_journaled) +
               " != acknowledged " + std::to_string(res.reports_pre_crash) +
               " (or payload mismatch)";

  // Invariant leg 2: at most one checkpoint interval (plus tick
  // quantization) of learned baseline regresses.
  const SimTime floor = ri.recovered ? restored->watermark() : stream_start;
  res.baseline_regressed_s = (crash_watermark - floor).to_seconds();
  res.baseline_bounded =
      res.baseline_regressed_s <=
      cfg_.checkpoint_interval_s + 2.0 * cfg_.stream_tick_ms / 1e3 + 1e-9;
  if (!res.baseline_bounded && res.note.empty())
    res.note = "baseline regressed " +
               std::to_string(res.baseline_regressed_s) + "s";

  // Invariant leg 3a: the ledger reconciles straight out of restore().
  const auto& c0 = restored->counters();
  bool ledger = c0.offered == c0.ingested + c0.shed && restored->queued() == 0;

  // Resume the stream past the recovery floor and finish: the analyzer
  // must keep working after a crash, and the ledger must still reconcile.
  try {
    for (const auto& r : records) {
      if (r.ts.nanos() <= restored->watermark().nanos()) continue;
      restored->advance_to(r.ts);
      restored->offer(r);
    }
    restored->finish();
  } catch (const std::exception& e) {
    ledger = false;
    res.note = std::string("resumed run threw: ") + e.what();
  }
  const auto& c1 = restored->counters();
  res.ledger_ok =
      ledger && c1.offered == c1.ingested + c1.shed && restored->queued() == 0;
  res.reports_final = c1.reports;
  if (!res.ledger_ok && res.note.empty())
    res.note = "flow ledger failed to reconcile after restart";

  res.invariant_ok =
      res.reports_durable && res.baseline_bounded && res.ledger_ok;
  return res;
}

RecoveryCampaignReport RecoveryCampaign::run() {
  RecoveryCampaignReport report;
  std::error_code ec;
  std::filesystem::create_directories(cfg_.dir, ec);
  for (std::uint64_t i = 0; i < cfg_.rounds; ++i) {
    const auto point = static_cast<KillPoint>(i % kKillPoints);
    RecoveryRoundResult res;
    try {
      res = run_round(i, point);
    } catch (const std::exception& e) {
      res.round = i;
      res.kill_point = point;
      res.note = std::string("round threw: ") + e.what();
    }
    report.crashes += res.crashed ? 1 : 0;
    report.recovered += res.recovered ? 1 : 0;
    report.invariant_failures += res.invariant_ok ? 0 : 1;
    report.rounds.push_back(std::move(res));
  }
  return report;
}

}  // namespace gretel::campaign
