#include "campaign/cluster.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>

namespace gretel::campaign {

CampaignSummary summarize(std::span<const ScenarioResult> results) {
  CampaignSummary s;
  s.scenarios = results.size();

  std::map<std::uint64_t, Cluster> clusters;  // ordered: stable iteration
  std::set<std::pair<std::size_t, std::uint64_t>> class_fps;

  for (const auto& r : results) {
    const auto cls = static_cast<std::size_t>(r.fault_class);
    const auto out = static_cast<std::size_t>(r.outcome);
    ++s.outcomes[out];
    auto& c = s.per_class[cls];
    ++c.scenarios;
    ++c.outcomes[out];
    if (r.env_expected) ++c.env_expected;
    if (r.env_localized) ++c.env_localized;
    s.audit_shed += r.audit_shed;
    if (r.budget_truncated) ++s.budget_truncated;
    class_fps.insert({cls, r.fingerprint});

    auto [it, fresh] = clusters.try_emplace(r.fingerprint);
    auto& cl = it->second;
    if (fresh) {
      cl.fingerprint = r.fingerprint;
      cl.example_id = r.id;
      cl.example_class = r.fault_class;
      cl.example_outcome = r.outcome;
    } else if (r.id < cl.example_id) {
      cl.example_id = r.id;
      cl.example_class = r.fault_class;
      cl.example_outcome = r.outcome;
    }
    ++cl.size;
  }

  for (const auto& [cls, fp] : class_fps)
    ++s.per_class[cls].distinct_fingerprints;

  s.clusters.reserve(clusters.size());
  for (const auto& [fp, cl] : clusters) s.clusters.push_back(cl);
  std::sort(s.clusters.begin(), s.clusters.end(),
            [](const Cluster& a, const Cluster& b) {
              if (a.size != b.size) return a.size > b.size;
              return a.fingerprint < b.fingerprint;
            });
  s.distinct_fingerprints = s.clusters.size();
  for (const auto& cl : s.clusters)
    if (cl.size == 1) ++s.singleton_fingerprints;
  return s;
}

namespace {

void append_outcomes(std::string& out, const std::size_t (&counts)[kOutcomes]) {
  for (std::size_t o = 0; o < kOutcomes; ++o) {
    out += "\"";
    out += to_string(static_cast<Outcome>(o));
    out += "\": ";
    out += std::to_string(counts[o]);
    if (o + 1 < kOutcomes) out += ", ";
  }
}

}  // namespace

void append_summary_json(std::string& out, const CampaignSummary& s) {
  out += "{\n    \"scenarios\": ";
  out += std::to_string(s.scenarios);
  out += ",\n    \"outcomes\": {";
  append_outcomes(out, s.outcomes);
  out += "},\n    \"localized_fraction\": ";
  {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.4f", s.localized_fraction());
    out += buf;
  }
  out += ",\n    \"distinct_fingerprints\": ";
  out += std::to_string(s.distinct_fingerprints);
  out += ",\n    \"singleton_fingerprints\": ";
  out += std::to_string(s.singleton_fingerprints);
  out += ",\n    \"audit_shed\": ";
  out += std::to_string(s.audit_shed);
  out += ",\n    \"budget_truncated\": ";
  out += std::to_string(s.budget_truncated);

  out += ",\n    \"per_class\": [";
  for (std::size_t c = 0; c < kFaultClasses; ++c) {
    const auto& cc = s.per_class[c];
    if (c) out += ',';
    out += "\n      {\"class\": \"";
    out += to_string(static_cast<FaultClass>(c));
    out += "\", \"scenarios\": ";
    out += std::to_string(cc.scenarios);
    out += ", ";
    append_outcomes(out, cc.outcomes);
    out += ", \"env_expected\": ";
    out += std::to_string(cc.env_expected);
    out += ", \"env_localized\": ";
    out += std::to_string(cc.env_localized);
    out += ", \"distinct_fingerprints\": ";
    out += std::to_string(cc.distinct_fingerprints);
    out += '}';
  }
  out += "\n    ],\n    \"clusters\": [";
  for (std::size_t i = 0; i < s.clusters.size(); ++i) {
    const auto& cl = s.clusters[i];
    if (i) out += ',';
    out += "\n      {\"fingerprint\": \"";
    out += fingerprint_hex(cl.fingerprint);
    out += "\", \"size\": ";
    out += std::to_string(cl.size);
    out += ", \"example_id\": ";
    out += std::to_string(cl.example_id);
    out += ", \"example_class\": \"";
    out += to_string(cl.example_class);
    out += "\", \"example_outcome\": \"";
    out += to_string(cl.example_outcome);
    out += "\"}";
  }
  out += "\n    ]\n  }";
}

}  // namespace gretel::campaign
