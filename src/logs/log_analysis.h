// Log-analysis baseline — the comparator GRETEL beats in every §3.1
// scenario.
//
// Models how operators actually debug with logs: lines are shipped from the
// nodes in periodic collation batches (so a finding is only *available*
// at the batch boundary after it was written), and diagnosis is grep over
// a level threshold and an optional pattern.  The baseline's structural
// limits are the paper's: findings depend entirely on what services chose
// to log and at which level, they never name the high-level operation, and
// they arrive with collation latency.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "stack/logging.h"
#include "util/time.h"

namespace gretel::logs {

class LogAnalyzer {
 public:
  struct Options {
    // Nodes ship their logs in batches on this period; a line written at t
    // becomes searchable at the next batch boundary after t.
    util::SimDuration collation_period = util::SimDuration::seconds(60);
  };

  LogAnalyzer();
  explicit LogAnalyzer(Options options);

  void ingest(const stack::LogLine& line);
  void ingest(const std::vector<stack::LogLine>& lines);

  struct Finding {
    stack::LogLine line;
    util::SimTime available_at;  // collation boundary after line.ts
  };

  // Grep: lines at `min_level` or above whose message contains `pattern`
  // (empty pattern matches everything), ordered by timestamp.
  std::vector<Finding> grep(stack::LogLevel min_level,
                            std::string_view pattern = {}) const;

  // Convenience for the paper's comparisons: the first error-ish finding at
  // the given level, or none — "log level set to ERROR reveals no errors".
  std::vector<Finding> errors_at(stack::LogLevel min_level) const {
    return grep(min_level);
  }

  std::size_t size() const { return lines_.size(); }

 private:
  util::SimTime collation_boundary_after(util::SimTime t) const;

  Options options_;
  std::vector<stack::LogLine> lines_;
};

}  // namespace gretel::logs
