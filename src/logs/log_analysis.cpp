#include "logs/log_analysis.h"

#include <algorithm>

namespace gretel::logs {

LogAnalyzer::LogAnalyzer() : LogAnalyzer(Options{}) {}

LogAnalyzer::LogAnalyzer(Options options) : options_(options) {}

void LogAnalyzer::ingest(const stack::LogLine& line) {
  lines_.push_back(line);
}

void LogAnalyzer::ingest(const std::vector<stack::LogLine>& lines) {
  lines_.insert(lines_.end(), lines.begin(), lines.end());
}

util::SimTime LogAnalyzer::collation_boundary_after(util::SimTime t) const {
  const auto period = options_.collation_period.count();
  if (period <= 0) return t;
  const auto since_epoch = t.nanos();
  const auto batches = since_epoch / period + 1;
  return util::SimTime(batches * period);
}

std::vector<LogAnalyzer::Finding> LogAnalyzer::grep(
    stack::LogLevel min_level, std::string_view pattern) const {
  std::vector<Finding> out;
  for (const auto& line : lines_) {
    if (line.level < min_level) continue;
    if (!pattern.empty() &&
        line.message.find(pattern) == std::string::npos) {
      continue;
    }
    out.push_back({line, collation_boundary_after(line.ts)});
  }
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    return a.line.ts < b.line.ts;
  });
  return out;
}

}  // namespace gretel::logs
