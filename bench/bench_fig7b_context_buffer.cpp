// Reproduces Fig. 7b: operations matched at {100..400} concurrent tests
// with 8 injected faults — "with API error" (candidates matched on the
// offending API alone, no snapshot) vs the full context-buffer match.
//
// The paper's point: the snapshot + context buffer collapse dozens of
// API-level candidates to (nearly) one operation, improving marginally as
// parallelism grows the context buffer.
#include <cstdio>

#include "bench/harness.h"

int main() {
  using namespace gretel;

  bench::print_header(
      "Fig. 7b: operations matched, API-error-only vs context buffer");
  auto env = bench::BenchEnv::make();

  std::printf("%-10s %-18s %-18s %-12s\n", "parallel", "w/ API error only",
              "w/ context buffer", "beta final");
  for (int tests : {100, 200, 300, 400}) {
    tempest::WorkloadSpec spec;
    spec.concurrent_tests = tests;
    spec.faults = 8;
    spec.window = util::SimDuration::seconds(60);
    spec.seed = static_cast<std::uint64_t>(7000 + tests);
    const auto workload = make_parallel_workload(env.catalog, spec);

    bench::RunConfig config;
    config.executor_seed = spec.seed ^ 0x7Bull;
    const auto run = bench::run_precision(env, workload, config);

    double beta = 0;
    std::size_t n = 0;
    for (const auto& f : run.faults) {
      if (f.detected) {
        beta += static_cast<double>(f.beta_final);
        ++n;
      }
    }
    std::printf("%-10d %-18.1f %-18.2f %-12.1f\n", tests,
                run.avg_candidates(), run.avg_matched(),
                n ? beta / static_cast<double>(n) : 0.0);
  }
  std::printf("\npaper: matching on the error API alone leaves many "
              "operations; the snapshot narrows to ~1, improving with "
              "concurrency\n");
  return 0;
}
