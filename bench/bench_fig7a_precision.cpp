// Reproduces Fig. 7a: GRETEL's precision θ with {100..400} parallel tests
// and {1, 4, 8, 16} injected operational faults.
//
// Non-faulty tests are drawn proportional to the suite distribution; faulty
// operations come from Compute and Network only (§7.3).  Every fault's
// operation detection runs against all 1200 fingerprints.  The paper
// reports >98% precision in all scenarios.
#include <cstdio>

#include "bench/harness.h"

int main() {
  using namespace gretel;

  bench::print_header("Fig. 7a: precision vs parallel tests and faults");
  auto env = bench::BenchEnv::make();

  std::printf("%-10s %-8s %-12s %-12s %-10s %-12s\n", "parallel", "faults",
              "theta (avg)", "identified", "detected", "avg matched");
  for (int tests : {100, 200, 300, 400}) {
    for (int faults : {1, 4, 8, 16}) {
      tempest::WorkloadSpec spec;
      spec.concurrent_tests = tests;
      spec.faults = faults;
      spec.window = util::SimDuration::seconds(60);
      spec.seed = static_cast<std::uint64_t>(tests * 1000 + faults);
      const auto workload = make_parallel_workload(env.catalog, spec);

      bench::RunConfig config;
      config.executor_seed = spec.seed ^ 0xABCDull;
      const auto run = bench::run_precision(env, workload, config);

      std::printf("%-10d %-8d %-12.4f %-12.2f %-10.2f %-12.2f\n", tests,
                  faults, run.avg_theta(), run.identification_rate(),
                  run.detection_rate(), run.avg_matched());
    }
  }
  std::printf("\npaper: precision >98%% (theta > 0.98) in all scenarios, "
              "increasing marginally with load\n");
  return 0;
}
