// Reproduces Table 1: characterization of the Tempest test suite.
//
// Each of the 1200 operations runs in isolation (three repeats) through the
// simulated deployment; the capture agents decode the traffic, Algorithm 1
// learns the fingerprints, and we report per-category test counts, unique
// REST/RPC APIs observed, decoded events, and average fingerprint sizes
// with and without RPCs — the exact columns of the paper's Table 1.
#include <cstdio>

#include "bench/harness.h"
#include "stack/operation.h"

int main() {
  using namespace gretel;

  bench::print_header("Table 1: characterization of the Tempest test suite");
  auto env = bench::BenchEnv::make();

  std::printf(
      "%-10s %6s %10s %10s %12s %12s %10s %10s\n", "Category", "Tests",
      "uniq RPC", "uniq REST", "RPC events", "REST events", "FP w/RPC",
      "FP w/o");
  double paper_fp[5][2] = {{100, 56}, {18, 15}, {31, 16}, {17, 15}, {16, 11}};
  int paper_tests[5] = {517, 55, 251, 84, 293};
  int paper_uniq[5][2] = {{61, 195}, {10, 38}, {24, 70}, {11, 40}, {11, 20}};

  double total_rpc = 0;
  double total_rest = 0;
  for (std::size_t c = 0; c < stack::kCategories; ++c) {
    const auto& s = env.training.per_category[c];
    total_rpc += s.rpc_events;
    total_rest += s.rest_events;
    std::printf("%-10s %6d %10zu %10zu %12.1fK %11.1fK %10.1f %10.1f\n",
                std::string(to_string(static_cast<stack::Category>(c)))
                    .c_str(),
                s.tests, s.unique_rpc.size(), s.unique_rest.size(),
                s.rpc_events / 1000.0, s.rest_events / 1000.0,
                s.avg_fingerprint(), s.avg_fingerprint_norpc());
    std::printf("%-10s %6d %10d %10d %12s %12s %10.0f %10.0f   (paper)\n",
                "", paper_tests[c], paper_uniq[c][0], paper_uniq[c][1], "-",
                "-", paper_fp[c][0], paper_fp[c][1]);
  }
  std::printf("%-10s %6zu %10s %10s %12.1fK %11.1fK\n", "Total",
              env.catalog.operations().size(), "-", "-", total_rpc / 1000.0,
              total_rest / 1000.0);
  std::printf("(paper)   %6d %10s %10s %12s %12s\n", 1200, "-", "-",
              "110.9K", "131.4K");

  std::printf("\nFPmax (largest fingerprint): %zu (paper: 384)\n",
              env.training.fp_max);
  std::printf("Public APIs in catalog: %zu (paper: 643)\n",
              env.catalog.apis().size());
  return 0;
}
