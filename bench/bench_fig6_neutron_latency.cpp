// Reproduces Fig. 6 / §7.2.2: anomalous latency of Neutron's
// GET /v2.0/ports.json during 400 concurrent operations, caused by a CPU
// surge on the Neutron server.  Prints the latency time series (original
// level vs the detector's adapted level), the level-shift alarms, and the
// root-cause verdict (high CPU on the Neutron node).
#include <cstdio>

#include "bench/harness.h"
#include "monitor/metrics.h"
#include "stack/workflow.h"

int main() {
  using namespace gretel;
  using util::SimDuration;
  using util::SimTime;

  bench::print_header("Fig. 6: Neutron GET /ports.json latency anomaly");
  auto env = bench::BenchEnv::make();

  // 400 concurrent operations over 120 s; CPU surge on the Neutron server
  // starting at t = 60 s.
  tempest::WorkloadSpec spec;
  spec.concurrent_tests = 400;
  spec.faults = 0;
  spec.window = SimDuration::seconds(120);
  spec.seed = 600;
  auto workload = make_parallel_workload(env.catalog, spec);

  env.deployment.inject_cpu_surge(wire::ServiceKind::Neutron,
                                  SimTime::epoch() + SimDuration::seconds(60),
                                  SimTime::epoch() + SimDuration::minutes(5),
                                  85.0);

  stack::WorkflowExecutor executor(&env.deployment, &env.catalog.apis(),
                                   &env.catalog.infra(), 61);
  const auto records = executor.execute(workload.launches);

  auto options = env.analyzer_options(1000.0);
  options.run_root_cause = true;
  core::Analyzer analyzer(&env.training.db, &env.catalog.apis(),
                          &env.deployment, options);
  monitor::ResourceMonitor mon(&env.deployment, SimDuration::seconds(1), 6);
  mon.sample_range(SimTime::epoch(),
                   records.back().ts + SimDuration::seconds(3),
                   analyzer.metrics());
  for (const auto& r : records) analyzer.on_wire(r);
  analyzer.finish();

  // Latency series of the target API, bucketed per 5 s for the plot.
  const auto api = env.catalog.well_known().neutron_get_ports;
  const auto* series = analyzer.latency_series(api);
  if (series == nullptr || series->empty()) {
    std::printf("no samples for GET /v2.0/ports.json\n");
    return 1;
  }
  std::printf("%-10s %-16s %-8s\n", "t (s)", "latency (ms)", "samples");
  double bucket_start = 0;
  double sum = 0;
  int count = 0;
  for (const auto& p : series->points()) {
    if (p.t_seconds >= bucket_start + 5.0) {
      if (count) {
        std::printf("%-10.0f %-16.2f %-8d\n", bucket_start, sum / count,
                    count);
      }
      bucket_start += 5.0 * static_cast<int>(
                                (p.t_seconds - bucket_start) / 5.0);
      sum = 0;
      count = 0;
    }
    sum += p.value;
    ++count;
  }
  if (count) std::printf("%-10.0f %-16.2f %-8d\n", bucket_start, sum / count,
                         count);

  // Level-shift alarms (the red marks in Fig. 6) and root causes.
  int perf_reports = 0;
  bool cpu_on_neutron = false;
  const auto neutron_node =
      env.deployment.primary_node_for(wire::ServiceKind::Neutron);
  for (const auto& d : analyzer.diagnoses()) {
    if (d.fault.kind != core::FaultKind::Performance) continue;
    const auto& desc = env.catalog.apis().get(d.fault.offending_api);
    if (desc.service != wire::ServiceKind::Neutron) continue;
    ++perf_reports;
    if (d.fault.latency) {
      std::printf("LS alarm: %s at t=%.1fs level %.1f -> %.1f ms\n",
                  desc.display_name().c_str(),
                  d.fault.latency->alarm.t_seconds,
                  d.fault.latency->alarm.baseline,
                  d.fault.latency->alarm.baseline +
                      d.fault.latency->alarm.magnitude);
    }
    for (const auto& c : d.root_cause.causes) {
      if (c.node == neutron_node &&
          c.detail.find("cpu") != std::string::npos) {
        cpu_on_neutron = true;
        std::printf("root cause: node %u (neutron-ctl): %s\n",
                    c.node.value(), c.detail.c_str());
      }
    }
  }
  std::printf("\nNeutron performance reports: %d; CPU surge attributed to "
              "the Neutron server: %s\n",
              perf_reports, cpu_on_neutron ? "yes" : "no");
  std::printf("paper: latency of v2.0/ports.json (and quotas/networks) "
              "shifts up; RCA attributes it to Neutron-server CPU\n");
  return 0;
}
