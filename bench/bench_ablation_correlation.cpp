// Ablation: correlation identifiers (§5.3.1 "OpenStack is in the process of
// introducing a correlation identifier ... GRETEL can exploit these
// correlation identifiers to increase its precision by reducing the number
// of packets against which a fingerprint is matched").
//
// The same workloads run against a Liberty-style deployment (no correlation
// ids) and one that stamps every message with its operation's request id.
#include <cstdio>

#include "bench/harness.h"

int main() {
  using namespace gretel;

  bench::print_header("Ablation: correlation identifiers (§5.3.1)");
  auto env = bench::BenchEnv::make();

  std::printf("%-10s %-8s %-14s %-12s %-12s %-12s\n", "parallel", "faults",
              "corr ids", "theta", "identified", "avg matched");
  for (int tests : {100, 400}) {
    for (int faults : {4, 16}) {
      tempest::WorkloadSpec spec;
      spec.concurrent_tests = tests;
      spec.faults = faults;
      spec.window = util::SimDuration::seconds(60);
      spec.seed = static_cast<std::uint64_t>(tests * 100 + faults);
      const auto workload = make_parallel_workload(env.catalog, spec);

      for (bool corr : {false, true}) {
        bench::RunConfig config;
        config.correlation_ids = corr;
        config.executor_seed = spec.seed ^ 0xC0FEull;
        const auto run = bench::run_precision(env, workload, config);
        std::printf("%-10d %-8d %-14s %-12.4f %-12.2f %-12.2f\n", tests,
                    faults, corr ? "yes" : "no", run.avg_theta(),
                    run.identification_rate(), run.avg_matched());
      }
    }
  }
  std::printf("\nwith correlation ids, the snapshot reduces to the faulty "
              "operation's own packets: precision approaches theta = 1 with "
              "a single matched operation\n");
  return 0;
}
