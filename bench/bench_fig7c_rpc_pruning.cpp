// Reproduces Fig. 7c: operations matched with and without RPC symbols in
// the fingerprint, at 100 concurrent tests with 8 injected faults.
//
// §6's optimization prunes RPC symbols from matching (an RPC error is also
// captured in the REST relay).  The paper finds RPC symbols improve
// precision only marginally — the justification for pruning them.
#include <cstdio>

#include "bench/harness.h"

int main() {
  using namespace gretel;

  bench::print_header("Fig. 7c: RPC pruning in fingerprint matching");
  auto env = bench::BenchEnv::make();

  tempest::WorkloadSpec spec;
  spec.concurrent_tests = 100;
  spec.faults = 8;
  spec.window = util::SimDuration::seconds(60);
  spec.seed = 7100;
  const auto workload = make_parallel_workload(env.catalog, spec);

  std::printf("%-22s %-18s %-14s %-12s\n", "variant", "avg matched",
              "avg theta", "identified");
  for (bool with_rpc : {false, true}) {
    bench::RunConfig config;
    config.match_rpc = with_rpc;
    config.executor_seed = 0x7C7Cull;
    const auto run = bench::run_precision(env, workload, config);
    std::printf("%-22s %-18.2f %-14.4f %-12.2f\n",
                with_rpc ? "with RPCs" : "without RPCs (prod)",
                run.avg_matched(), run.avg_theta(),
                run.identification_rate());
  }

  // "With API error": candidates on the offending API alone.
  bench::RunConfig config;
  config.executor_seed = 0x7C7Cull;
  const auto run = bench::run_precision(env, workload, config);
  std::printf("%-22s %-18.1f\n", "API error only", run.avg_candidates());

  std::printf("\npaper: RPCs improve precision only marginally for some "
              "scenarios; pruning them is the production default\n");
  return 0;
}
