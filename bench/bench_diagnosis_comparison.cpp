// Reproduces the §3.1 motivation scenarios as a head-to-head comparison:
// GRETEL vs HANSEL vs log analysis at ERROR and WARNING levels, on the
// paper's three representative cases.  For each tool we report whether it
// detects the fault, names the high-level operation, finds the root cause,
// and how long after the fault its report becomes available.
#include <cstdio>
#include <optional>

#include "bench/harness.h"
#include "hansel/hansel.h"
#include "logs/log_analysis.h"
#include "monitor/metrics.h"
#include "stack/workflow.h"

namespace {

using namespace gretel;
using util::SimDuration;
using util::SimTime;

struct Row {
  const char* tool;
  bool detects = false;
  bool names_operation = false;
  bool finds_root_cause = false;
  double latency_s = -1.0;  // from fault to report availability
};

void print_rows(const char* title, std::span<const Row> rows) {
  std::printf("\n%s\n", title);
  std::printf("  %-22s %-9s %-12s %-12s %-10s\n", "tool", "detects",
              "names op", "root cause", "latency");
  for (const auto& r : rows) {
    char latency[32];
    if (r.latency_s < 0) {
      std::snprintf(latency, sizeof latency, "-");
    } else {
      std::snprintf(latency, sizeof latency, "%.1fs", r.latency_s);
    }
    std::printf("  %-22s %-9s %-12s %-12s %-10s\n", r.tool,
                r.detects ? "yes" : "no",
                r.names_operation ? "yes" : "no",
                r.finds_root_cause ? "yes" : "no", latency);
  }
}

struct ScenarioResult {
  std::vector<Row> rows;
};

// Runs one faulty scenario through all four tools.
ScenarioResult run_scenario(bench::BenchEnv& env,
                            const std::vector<stack::Launch>& launches,
                            SimTime fault_time, bool performance_fault,
                            std::uint64_t seed) {
  ScenarioResult result;

  stack::WorkflowExecutor executor(&env.deployment, &env.catalog.apis(),
                                   &env.catalog.infra(), seed);
  const auto records = executor.execute(launches);
  const auto& logs = executor.logs();

  // --- GRETEL ---------------------------------------------------------
  {
    auto options = env.analyzer_options(
        std::max(150.0, static_cast<double>(records.size()) /
                            (records.back().ts - records.front().ts)
                                .to_seconds()));
    options.run_root_cause = true;
    core::Analyzer analyzer(&env.training.db, &env.catalog.apis(),
                            &env.deployment, options);
    monitor::ResourceMonitor mon(&env.deployment, SimDuration::seconds(1),
                                 seed);
    mon.sample_range(SimTime::epoch(),
                     records.back().ts + SimDuration::seconds(3),
                     analyzer.metrics());
    for (const auto& r : records) analyzer.on_wire(r);
    analyzer.finish();

    Row row{"GRETEL"};
    for (const auto& d : analyzer.diagnoses()) {
      if (performance_fault &&
          d.fault.kind != core::FaultKind::Performance) {
        continue;
      }
      row.detects = true;
      row.names_operation = row.names_operation ||
                            !d.fault.matched_fingerprints.empty();
      row.finds_root_cause =
          row.finds_root_cause || !d.root_cause.causes.empty();
      const double latency = (d.fault.detected_at - fault_time).to_seconds();
      if (row.latency_s < 0 || latency < row.latency_s)
        row.latency_s = std::max(0.0, latency);
    }
    result.rows.push_back(row);
  }

  // --- HANSEL ---------------------------------------------------------
  {
    net::CaptureTap tap(&env.catalog.apis(),
                        env.deployment.service_by_port());
    hansel::Hansel baseline;
    for (const auto& r : records) {
      if (auto ev = tap.decode(r)) baseline.on_message(*ev, r.bytes);
    }
    baseline.flush();

    Row row{"HANSEL"};
    for (const auto& chain : baseline.chains()) {
      row.detects = true;  // reports a chain of messages
      const double latency =
          (chain.reported_at - fault_time).to_seconds();
      if (row.latency_s < 0 || latency < row.latency_s)
        row.latency_s = std::max(0.0, latency);
    }
    // HANSEL names no operation and has no root-cause engine (§9.2), and
    // is never invoked for performance faults (no error message).
    result.rows.push_back(row);
  }

  // --- log analysis at ERROR and WARNING -------------------------------
  for (auto level : {stack::LogLevel::Error, stack::LogLevel::Warning}) {
    logs::LogAnalyzer analyzer;
    analyzer.ingest(logs);
    const auto findings = analyzer.grep(level);
    Row row{level == stack::LogLevel::Error ? "logs (ERROR)"
                                            : "logs (WARNING)"};
    if (!findings.empty()) {
      row.detects = true;
      row.latency_s = std::max(
          0.0, (findings.front().available_at - fault_time).to_seconds());
    }
    result.rows.push_back(row);
  }
  return result;
}

}  // namespace

int main() {
  bench::print_header(
      "Section 3.1: GRETEL vs HANSEL vs log analysis");
  auto env = bench::BenchEnv::make();
  const auto& vm_create =
      env.catalog.operation(env.catalog.canonical().vm_create);

  auto step_of = [&](const stack::OperationTemplate& op, wire::ApiId api) {
    for (std::size_t i = 0; i < op.steps.size(); ++i) {
      if (op.steps[i].api == api) return i;
    }
    return std::size_t{0};
  };

  // §3.1.1 — VM create fails ("No valid host"), agent crashed upstream.
  {
    env.deployment.crash_software(wire::ServiceKind::NovaCompute,
                                  "neutron-plugin-linuxbridge-agent",
                                  SimTime::epoch(),
                                  SimTime::epoch() + SimDuration::minutes(5));
    std::vector<stack::Launch> launches;
    for (int i = 0; i < 20; ++i) {
      launches.push_back({&vm_create,
                          SimTime::epoch() + SimDuration::seconds(i),
                          std::nullopt});
    }
    const auto fault_time = SimTime::epoch() + SimDuration::seconds(10);
    launches.push_back(
        {&vm_create, fault_time,
         stack::no_valid_host_fault(step_of(
             vm_create, env.catalog.well_known().neutron_post_ports))});
    const auto r = run_scenario(env, launches, fault_time, false, 311);
    print_rows("3.1.1 VM create fails (No valid host; WARNING-only logs):",
               r.rows);
    env.deployment = stack::Deployment::standard(3);  // reset injections
  }

  // §7.2.1 — image upload 413 with *silent* Glance logs.
  {
    env.deployment.inject_disk_exhaustion(
        wire::ServiceKind::Glance, SimTime::epoch(),
        SimTime::epoch() + SimDuration::minutes(5), 199'600.0);
    const auto& upload =
        env.catalog.operation(env.catalog.canonical().image_upload);
    const auto fault_time = SimTime::epoch() + SimDuration::seconds(5);
    std::vector<stack::Launch> launches{
        {&upload, SimTime::epoch(), std::nullopt},
        {&upload, fault_time,
         stack::entity_too_large_fault(step_of(
             upload, env.catalog.well_known().glance_put_image_file))}};
    const auto r = run_scenario(env, launches, fault_time, false, 721);
    print_rows("7.2.1 image upload 413 (empty Glance logs):", r.rows);
    env.deployment = stack::Deployment::standard(3);
  }

  // §3.1.2 — API bottleneck: operations succeed, latency degrades.
  {
    const auto surge_start = SimTime::epoch() + SimDuration::seconds(25);
    env.deployment.inject_cpu_surge(wire::ServiceKind::Neutron, surge_start,
                                    SimTime::epoch() + SimDuration::minutes(5),
                                    85.0);
    std::vector<stack::Launch> launches;
    for (int i = 0; i < 150; ++i) {
      launches.push_back({&vm_create,
                          SimTime::epoch() + SimDuration::millis(400 * i),
                          std::nullopt});
    }
    const auto r = run_scenario(env, launches, surge_start, true, 312);
    print_rows("3.1.2 API bottleneck (no errors at all):", r.rows);
    env.deployment = stack::Deployment::standard(3);
  }

  std::printf(
      "\npaper: GRETEL reports in <2s naming the operation and cause; "
      "HANSEL reports 30s-bucket chains without operations or causes and "
      "misses performance faults entirely; ERROR-level logs are empty and "
      "WARNING-level logs repeat the dashboard error after collation\n");
  return 0;
}
