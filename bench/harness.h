// Shared infrastructure for the reproduction benches: one trained
// environment (full-scale Tempest catalog + deployment + fingerprint DB)
// and the per-fault evaluation used by the §7.3 precision experiments.
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "gretel/analyzer.h"
#include "gretel/training.h"
#include "tempest/workload.h"

namespace gretel::bench {

struct BenchEnv {
  tempest::TempestCatalog catalog;
  stack::Deployment deployment;
  core::TrainingReport training;

  // Builds the environment and learns fingerprints (the offline phase).
  static BenchEnv make(double fraction = 1.0,
                       std::uint64_t seed = 0xC0DE2016ull);

  core::Analyzer::Options analyzer_options(double p_rate) const;
};

// Outcome of one injected fault, reconstructed from the analyzer's
// diagnoses via ground-truth instance labels on the error events.
struct FaultOutcome {
  bool detected = false;
  bool identified = false;      // true operation among the matches
  std::size_t matched = 0;      // n — operations matched
  std::size_t candidates = 0;   // matched on the error API alone (no snapshot)
  double theta = 0.0;
  std::size_t beta_final = 0;
};

struct PrecisionRun {
  std::vector<FaultOutcome> faults;
  std::uint64_t events = 0;
  std::uint64_t wire_bytes = 0;
  double p_rate = 0.0;  // observed packets per second of the capture
  double wall_seconds = 0.0;

  double detection_rate() const;
  double identification_rate() const;
  double avg_theta() const;
  double avg_matched() const;
  double avg_candidates() const;
};

// Executes the workload against a fresh analyzer (root cause off) and
// evaluates every injected fault.  `match_rpc`/`backend` override the
// analyzer configuration for the Fig. 7c and ablation variants.
struct RunConfig {
  bool match_rpc = false;
  core::MatchBackend backend = core::MatchBackend::SymbolSubsequence;
  std::uint64_t executor_seed = 0xE1ull;
  // Deployment emits OpenStack correlation ids (the §5.3.1 enhancement).
  bool correlation_ids = false;
};

PrecisionRun run_precision(BenchEnv& env,
                           const tempest::GeneratedWorkload& workload,
                           const RunConfig& config = RunConfig{});

// Prints a separator / header in the textual reports.
void print_header(const std::string& title);

// ---------------------------------------------------------------------------
// Self-describing bench JSON.  Every BENCH_*.json opens with the same
// `"meta"` block — schema version, run parameters, host and build facts —
// so a number can always be traced back to the machine and flags that
// produced it, and downstream tooling (tools/render_bench_md.py, the CI
// tripwire) can parse all bench files uniformly.
// ---------------------------------------------------------------------------

struct BenchRunMeta {
  std::string benchmark;         // e.g. "ingest_hotpath"
  int schema_version = 1;
  std::size_t events_measured = 0;  // events per timed measurement
  std::size_t pool_records = 0;     // synthetic record pool size
  std::size_t ingest_batch = 0;     // events per on_events batch (0 = n/a)
  std::size_t drain_interval = 0;   // pipeline drain cadence (0 = n/a)
};

// Writes `  "meta": { ... }` (two-space indent, no trailing comma) with the
// host CPU count, compiler and optimization facts filled in automatically.
void write_bench_meta(std::FILE* f, const BenchRunMeta& meta);

// Host hardware threads as recorded in the meta block (0 = unknown).
unsigned host_cpus();

}  // namespace gretel::bench
