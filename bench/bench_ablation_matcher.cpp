// Ablation: symbol-subsequence matching vs the std::regex backend (the
// paper offloads regex matching to a Perl process, §6 — this bench shows
// why matching directly on symbols wins), and the cost of keeping RPC
// literals.  google-benchmark microbenchmarks.
#include <benchmark/benchmark.h>

#include <vector>

#include "gretel/matcher.h"
#include "util/rng.h"

namespace {

using namespace gretel;
using wire::ApiId;

struct Workload {
  wire::ApiCatalog catalog;
  std::vector<ApiId> literals;
  std::vector<ApiId> snapshot;

  // literal_count literals embedded in-order in a snapshot of
  // snapshot_size symbols drawn from an OpenStack-sized alphabet.
  Workload(std::size_t literal_count, std::size_t snapshot_size) {
    for (int i = 0; i < 643; ++i) {
      catalog.add_rest(wire::ServiceKind::Nova, wire::HttpMethod::Post,
                       "/api/" + std::to_string(i));
    }
    util::Rng rng(literal_count * 1000 + snapshot_size);
    for (std::size_t i = 0; i < snapshot_size; ++i) {
      snapshot.emplace_back(
          static_cast<std::uint16_t>(rng.next_below(643)));
    }
    // Plant the literals in order at random positions.
    auto positions = rng.sample_indices(snapshot_size, literal_count);
    for (auto pos : positions) literals.push_back(snapshot[pos]);
  }
};

void BM_SubsequenceMatch(benchmark::State& state) {
  const Workload w(static_cast<std::size_t>(state.range(0)),
                   static_cast<std::size_t>(state.range(1)));
  const core::Matcher matcher(&w.catalog,
                              {true, core::MatchBackend::SymbolSubsequence});
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher.matches(w.literals, w.snapshot));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(w.snapshot.size()));
}

// Steady state: the compiled pattern comes from the matcher's cache after
// the first iteration (the production shape — candidate literal lists are
// fixed at load time, so repeats dominate).
void BM_RegexMatch(benchmark::State& state) {
  const Workload w(static_cast<std::size_t>(state.range(0)),
                   static_cast<std::size_t>(state.range(1)));
  const core::Matcher matcher(&w.catalog,
                              {true, core::MatchBackend::StdRegex});
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher.matches(w.literals, w.snapshot));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(w.snapshot.size()));
}

// Cold: a fresh matcher per call, so every match recompiles its pattern —
// the pre-cache behaviour this backend used to pay on every call.
void BM_RegexMatchCold(benchmark::State& state) {
  const Workload w(static_cast<std::size_t>(state.range(0)),
                   static_cast<std::size_t>(state.range(1)));
  for (auto _ : state) {
    const core::Matcher matcher(&w.catalog,
                                {true, core::MatchBackend::StdRegex});
    benchmark::DoNotOptimize(matcher.matches(w.literals, w.snapshot));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(w.snapshot.size()));
}

void BM_TruncateAtFirst(benchmark::State& state) {
  const Workload w(8, static_cast<std::size_t>(state.range(0)));
  const auto target = w.snapshot[w.snapshot.size() / 2];
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::Matcher::truncate_at_first(w.snapshot, target));
  }
}

void BM_RequiredLiterals(benchmark::State& state) {
  const Workload w(8, static_cast<std::size_t>(state.range(0)));
  const core::Matcher matcher(&w.catalog,
                              {false, core::MatchBackend::SymbolSubsequence});
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher.required_literals(w.snapshot));
  }
}

}  // namespace

// Literal counts ~ state-change prefix sizes; snapshots ~ context buffers
// (β0 = 80 up to α = 768 in the paper's configuration).
BENCHMARK(BM_SubsequenceMatch)
    ->Args({4, 80})
    ->Args({16, 80})
    ->Args({4, 768})
    ->Args({16, 768})
    ->Args({64, 768});
BENCHMARK(BM_RegexMatch)
    ->Args({4, 80})
    ->Args({16, 80})
    ->Args({4, 768})
    ->Args({16, 768})
    ->Args({64, 768});
BENCHMARK(BM_RegexMatchCold)->Args({4, 80})->Args({16, 768});
BENCHMARK(BM_TruncateAtFirst)->Arg(100)->Arg(384);
BENCHMARK(BM_RequiredLiterals)->Arg(100)->Arg(384);

BENCHMARK_MAIN();
