// Ablation: sensitivity of operation detection to the context-buffer
// parameters (c1, c2) and to the detection backend — the design choices
// §5.3.1 and §6 fix empirically (c1 = 0.1, c2 = 0.04, symbol matching).
//
// One fixed workload (200 tests, 8 faults) is analyzed under each variant;
// we report precision, identification rate, analysis wall time, and the
// final context buffer size.
#include <cstdio>

#include "bench/harness.h"

namespace {

using namespace gretel;

struct Variant {
  const char* name;
  double c1;
  double c2;
  core::MatchBackend backend;
};

}  // namespace

int main() {
  bench::print_header("Ablation: context buffer parameters and backend");
  auto env = bench::BenchEnv::make();

  tempest::WorkloadSpec spec;
  spec.concurrent_tests = 200;
  spec.faults = 8;
  spec.window = util::SimDuration::seconds(60);
  spec.seed = 9900;
  const auto workload = make_parallel_workload(env.catalog, spec);

  const Variant variants[] = {
      {"paper (c1=0.1, c2=0.04)", 0.1, 0.04,
       core::MatchBackend::SymbolSubsequence},
      {"small start (c1=0.01)", 0.01, 0.04,
       core::MatchBackend::SymbolSubsequence},
      {"large start (c1=0.5)", 0.5, 0.04,
       core::MatchBackend::SymbolSubsequence},
      {"fine growth (c2=0.01)", 0.1, 0.01,
       core::MatchBackend::SymbolSubsequence},
      {"coarse growth (c2=0.2)", 0.1, 0.2,
       core::MatchBackend::SymbolSubsequence},
      {"std::regex backend", 0.1, 0.04, core::MatchBackend::StdRegex},
  };

  std::printf("%-26s %-10s %-12s %-10s %-12s %-12s\n", "variant", "theta",
              "identified", "matched", "beta final", "analyze (s)");
  for (const auto& v : variants) {
    // run_precision reads c1/c2 through the analyzer options; temporarily
    // patch the environment's config by wrapping run_precision inline.
    stack::WorkflowExecutor executor(&env.deployment, &env.catalog.apis(),
                                     &env.catalog.infra(), 0x99ull);
    const auto records = executor.execute(workload.launches);
    const double span =
        (records.back().ts - records.front().ts).to_seconds();

    auto options = env.analyzer_options(
        static_cast<double>(records.size()) / span);
    options.config.c1 = v.c1;
    options.config.c2 = v.c2;
    options.config.backend = v.backend;
    core::Analyzer analyzer(&env.training.db, &env.catalog.apis(),
                            &env.deployment, options);
    const auto t0 = std::chrono::steady_clock::now();
    for (const auto& r : records) analyzer.on_wire(r);
    analyzer.finish();
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    double theta = 0;
    double matched = 0;
    double beta = 0;
    double identified = 0;
    std::size_t n = 0;
    for (const auto& d : analyzer.diagnoses()) {
      if (d.fault.kind != core::FaultKind::Operational) continue;
      theta += d.fault.theta;
      matched += static_cast<double>(d.fault.matched_fingerprints.size());
      beta += static_cast<double>(d.fault.beta_final);
      // Identification vs ground truth via the error events.
      for (const auto& ev : d.fault.error_events) {
        if (!ev.truth_template.valid()) continue;
        for (auto idx : d.fault.matched_fingerprints) {
          if (env.training.db.get(idx).op == ev.truth_template) {
            identified += 1.0;
            goto next;
          }
        }
      }
    next:
      ++n;
    }
    if (n) {
      theta /= static_cast<double>(n);
      matched /= static_cast<double>(n);
      beta /= static_cast<double>(n);
      identified /= static_cast<double>(n);
    }
    std::printf("%-26s %-10.4f %-12.2f %-10.2f %-12.1f %-12.3f\n", v.name,
                theta, identified, matched, beta, secs);
  }
  std::printf("\nthe paper's (c1, c2) balance precision against analysis "
              "cost; the regex backend (forward-only matching, as offloaded "
              "to Perl in §6) pays a large overhead and loses the "
              "window-tolerant relaxation\n");
  return 0;
}
