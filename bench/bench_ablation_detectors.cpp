// Ablation: the pluggable outlier detectors (§6 — "outlier detection in
// GRETEL is pluggable").  Compares the production level-shift detector
// against the windowed z-score and EWMA alternatives on the three synthetic
// regimes that matter for Fig. 8b-style behaviour:
//   * a stationary noisy series (false alarms),
//   * a sustained +8σ shift (detection delay, alarms during the shift —
//     the LS property is ONE alarm then adaptation), and
//   * the recovery back to baseline.
#include <cstdio>
#include <functional>
#include <memory>

#include "detect/ewma.h"
#include "detect/level_shift.h"
#include "detect/zscore.h"
#include "util/rng.h"

namespace {

using namespace gretel::detect;

struct Outcome {
  int false_alarms = 0;       // on the stationary prefix
  double detect_delay = -1;   // samples from shift start to first alarm
  int alarms_during_shift = 0;
  int alarms_on_recovery = 0;
};

Outcome evaluate(OutlierDetector& d, std::uint64_t seed) {
  gretel::util::Rng rng(seed);
  Outcome out;
  const int stationary = 600;
  const int shifted = 600;
  const int recovered = 300;
  double t = 0;
  for (int i = 0; i < stationary; ++i, ++t) {
    out.false_alarms += d.observe(t, rng.next_gaussian(10.0, 0.4)).has_value();
  }
  for (int i = 0; i < shifted; ++i, ++t) {
    if (d.observe(t, rng.next_gaussian(14.0, 0.4))) {
      ++out.alarms_during_shift;
      if (out.detect_delay < 0) out.detect_delay = i;
    }
  }
  for (int i = 0; i < recovered; ++i, ++t) {
    out.alarms_on_recovery +=
        d.observe(t, rng.next_gaussian(10.0, 0.4)).has_value();
  }
  return out;
}

}  // namespace

int main() {
  std::printf("\n=== Ablation: pluggable outlier detectors ===\n");
  std::printf("%-14s %-14s %-14s %-16s %-14s\n", "detector",
              "false alarms", "detect delay", "alarms in shift",
              "recovery alarms");

  struct Variant {
    const char* name;
    std::function<std::unique_ptr<OutlierDetector>()> make;
  };
  const Variant variants[] = {
      {"level-shift", [] { return make_level_shift(); }},
      {"z-score", [] { return make_zscore(); }},
      {"ewma", [] { return make_ewma(); }},
  };

  for (const auto& v : variants) {
    // Aggregate over seeds for stability.
    Outcome total;
    double delay_sum = 0;
    int delay_n = 0;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      const auto d = v.make();
      const auto o = evaluate(*d, seed);
      total.false_alarms += o.false_alarms;
      total.alarms_during_shift += o.alarms_during_shift;
      total.alarms_on_recovery += o.alarms_on_recovery;
      if (o.detect_delay >= 0) {
        delay_sum += o.detect_delay;
        ++delay_n;
      }
    }
    char delay[32];
    if (delay_n) {
      std::snprintf(delay, sizeof delay, "%.1f", delay_sum / delay_n);
    } else {
      std::snprintf(delay, sizeof delay, "missed");
    }
    std::printf("%-14s %-14.1f %-14s %-16.1f %-14.1f\n", v.name,
                total.false_alarms / 10.0, delay,
                total.alarms_during_shift / 10.0,
                total.alarms_on_recovery / 10.0);
  }

  std::printf(
      "\nthe LS property the paper relies on (§7.3): one alarm per shift, "
      "then adaptation; z-score keeps alarming through the shift (it never "
      "adapts), which is why GRETEL uses tsoutliers' LS mode\n");
  return 0;
}
