// Crash-tolerance costs and guarantees of the durable streaming mode
// (BENCH_recovery.json).
//
// Three legs:
//   1. Checkpoint write cost vs state size: one durable stream run with
//      the cadence disabled and checkpoint_now() forced at fixed points,
//      each write timed and its file size recorded — the cost curve as
//      learned state grows.
//   2. Kill-point recovery campaign (campaign/recovery_campaign.h): the
//      analyzer is deterministically killed at every kill point in
//      rotation, restored from disk, and the durability invariant is
//      asserted each round; restore() wall time and restored-state size
//      give the recovery-time-vs-state-size distribution.
//   3. Reports-lost histogram: per round, acknowledged-before-crash minus
//      durable-on-disk — the journal's fsync-before-acknowledge contract
//      says every bucket except 0 is a bug.
//
//   --rounds N               kill rounds (default 12)
//   --tests N                background workload per round (default 8)
//   --window S               workload window seconds (default 45)
//   --fraction F             Tempest catalog fraction (default 0.12)
//   --seed S                 root seed (default 0x5EC0)
//   --tick-ms T              detection tick cadence (default 200)
//   --checkpoint-interval S  checkpoint cadence seconds (default 2)
//   --dir PATH               scratch dir (default bench-recovery-scratch)
//   --out PATH               JSON path (default BENCH_recovery.json)
//   --tripwire               fail (exit 1) on: any invariant-failing round,
//                            any lost report, recovery p99 above
//                            --max-recovery-ms, or checkpoint write max
//                            above --max-checkpoint-ms
//   --max-recovery-ms X      restore() wall ceiling (default 2000)
//   --max-checkpoint-ms X    checkpoint write ceiling (default 500)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "campaign/recovery_campaign.h"
#include "persist/checkpoint.h"
#include "stack/workflow.h"
#include "stream/stream_analyzer.h"
#include "tempest/workload.h"
#include "tools/cli_common.h"
#include "util/seed.h"

namespace {

using namespace gretel;

double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

struct CheckpointSample {
  std::size_t state_bytes = 0;
  double write_ms = 0.0;
};

// Leg 1: forced checkpoints at fixed stream positions, each timed.
std::vector<CheckpointSample> measure_checkpoint_cost(
    bench::BenchEnv& env, std::uint64_t seed, int tests, long window_s,
    double tick_ms, const std::string& dir) {
  tempest::WorkloadSpec wspec;
  wspec.concurrent_tests = tests;
  wspec.faults = 4;
  wspec.window = util::SimDuration::seconds(window_s);
  wspec.seed = util::derive_seed(seed, util::SeedStream::Workload);
  const auto workload = tempest::make_parallel_workload(env.catalog, wspec);
  stack::WorkflowExecutor executor(
      &env.deployment, &env.catalog.apis(), &env.catalog.infra(),
      util::derive_seed(seed, util::SeedStream::Executor));
  const auto records = executor.execute(workload.launches);

  const double span_s =
      records.empty()
          ? 0.0
          : (records.back().ts - records.front().ts).to_seconds();
  auto opt = env.analyzer_options(std::max(
      span_s > 0 ? static_cast<double>(records.size()) / span_s : 150.0,
      150.0));
  opt.config.stream_tick_ms = tick_ms;
  // Cadence off (one checkpoint per eon): only the forced writes below
  // run, so each sample times exactly one checkpoint_now().
  opt.config.checkpoint_interval_s = 1e9;

  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  stream::StreamAnalyzer streamer(&env.training.db, &env.catalog.apis(),
                                  &env.deployment, opt);
  std::vector<CheckpointSample> samples;
  if (!streamer.enable_durability(dir)) return samples;

  const std::size_t stride = std::max<std::size_t>(1, records.size() / 12);
  std::uint64_t ckp_seq = 0;
  for (std::size_t i = 0; i < records.size(); ++i) {
    streamer.advance_to(records[i].ts);
    streamer.offer(records[i]);
    if ((i + 1) % stride == 0) {
      const auto t0 = std::chrono::steady_clock::now();
      if (streamer.checkpoint_now()) {
        CheckpointSample s;
        s.write_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
        const auto sz = std::filesystem::file_size(
            persist::checkpoint_path(dir, ckp_seq), ec);
        s.state_bytes = ec ? 0 : static_cast<std::size_t>(sz);
        samples.push_back(s);
        ++ckp_seq;
      }
    }
  }
  streamer.finish();
  return samples;
}

}  // namespace

int main(int argc, char** argv) {
  tools::Args args(argc, argv);

  const auto rounds = static_cast<std::size_t>(args.get_int("--rounds", 12));
  const int tests = static_cast<int>(args.get_int("--tests", 8));
  const long window_s = args.get_int("--window", 45);
  const double fraction = args.get_double("--fraction", 0.12);
  const auto seed =
      static_cast<std::uint64_t>(args.get_int("--seed", 0x5EC0L));
  const double tick_ms = args.get_double("--tick-ms", 200.0);
  const double ckp_interval =
      args.get_double("--checkpoint-interval", 2.0);
  const std::string dir =
      args.get("--dir").value_or("bench-recovery-scratch");
  const std::string out_path =
      args.get("--out").value_or("BENCH_recovery.json");
  const bool tripwire = args.has_flag("--tripwire");
  const double max_recovery_ms = args.get_double("--max-recovery-ms", 2000.0);
  const double max_checkpoint_ms =
      args.get_double("--max-checkpoint-ms", 500.0);

  bench::print_header("recovery: checkpoint cost, restore time, zero loss");
  auto env = bench::BenchEnv::make(fraction, 0xC0DE2016ull);

  // Leg 1: checkpoint write cost.
  const auto ckp_samples = measure_checkpoint_cost(
      env, util::derive_seed(seed, 0xC4B), tests, window_s, tick_ms,
      dir + "/checkpoint-cost");
  std::vector<double> write_ms;
  std::size_t state_min = 0, state_max = 0;
  for (const auto& s : ckp_samples) {
    write_ms.push_back(s.write_ms);
    state_min = state_min ? std::min(state_min, s.state_bytes)
                          : s.state_bytes;
    state_max = std::max(state_max, s.state_bytes);
  }
  std::sort(write_ms.begin(), write_ms.end());
  const double w_p50 = percentile(write_ms, 0.50);
  const double w_p95 = percentile(write_ms, 0.95);
  const double w_max = write_ms.empty() ? 0.0 : write_ms.back();

  // Legs 2+3: the kill-point campaign.
  campaign::RecoveryCampaignConfig ccfg;
  ccfg.seed = seed;
  ccfg.rounds = rounds;
  ccfg.concurrent_tests = tests;
  ccfg.window_s = static_cast<double>(window_s);
  ccfg.stream_tick_ms = tick_ms;
  ccfg.checkpoint_interval_s = ckp_interval;
  ccfg.dir = dir + "/kill-points";
  campaign::RecoveryCampaign rc(&env.catalog, &env.training, ccfg);
  const auto report = rc.run();

  std::vector<double> recovery_ms;
  std::size_t restored_state_max = 0;
  std::map<std::uint64_t, std::size_t> lost_histogram;
  std::uint64_t reports_lost_total = 0;
  for (const auto& r : report.rounds) {
    recovery_ms.push_back(r.recovery_ms);
    restored_state_max = std::max(restored_state_max, r.state_bytes);
    const std::uint64_t lost =
        r.reports_pre_crash > r.reports_journaled
            ? r.reports_pre_crash - r.reports_journaled
            : 0;
    ++lost_histogram[lost];
    reports_lost_total += lost;
  }
  std::sort(recovery_ms.begin(), recovery_ms.end());
  const double r_p50 = percentile(recovery_ms, 0.50);
  const double r_p99 = percentile(recovery_ms, 0.99);
  const double r_max = recovery_ms.empty() ? 0.0 : recovery_ms.back();

  std::printf(
      "checkpoint: %zu writes, ms p50=%.2f p95=%.2f max=%.2f, "
      "state %zu..%zu bytes\n"
      "recovery: %zu rounds, %zu crashes, %zu recovered, %zu invariant "
      "failures\n"
      "restore ms: p50=%.2f p99=%.2f max=%.2f, restored state max %zu "
      "bytes\n"
      "reports lost: %llu total\n",
      ckp_samples.size(), w_p50, w_p95, w_max, state_min, state_max,
      report.rounds.size(), report.crashes, report.recovered,
      report.invariant_failures, r_p50, r_p99, r_max, restored_state_max,
      static_cast<unsigned long long>(reports_lost_total));
  for (const auto& r : report.rounds) {
    if (!r.invariant_ok)
      std::printf("  round %llu [%s]: %s\n",
                  static_cast<unsigned long long>(r.round),
                  campaign::to_string(r.kill_point), r.note.c_str());
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  bench::BenchRunMeta meta;
  meta.benchmark = "recovery";
  meta.events_measured = report.rounds.size();
  std::fprintf(f, "{\n");
  bench::write_bench_meta(f, meta);
  std::fprintf(
      f,
      ",\n  \"checkpoint\": {\"writes\": %zu, \"write_ms_p50\": %.3f, "
      "\"write_ms_p95\": %.3f, \"write_ms_max\": %.3f, "
      "\"state_bytes_min\": %zu, \"state_bytes_max\": %zu},\n",
      ckp_samples.size(), w_p50, w_p95, w_max, state_min, state_max);
  std::fprintf(f, "  \"checkpoint_samples\": [");
  for (std::size_t i = 0; i < ckp_samples.size(); ++i)
    std::fprintf(f, "%s{\"state_bytes\": %zu, \"write_ms\": %.3f}",
                 i ? ", " : "", ckp_samples[i].state_bytes,
                 ckp_samples[i].write_ms);
  std::fprintf(f, "],\n");
  std::fprintf(
      f,
      "  \"recovery\": {\"rounds\": %zu, \"crashes\": %zu, "
      "\"recovered\": %zu, \"invariant_failures\": %zu, "
      "\"recovery_ms_p50\": %.3f, \"recovery_ms_p99\": %.3f, "
      "\"recovery_ms_max\": %.3f, \"restored_state_bytes_max\": %zu},\n",
      report.rounds.size(), report.crashes, report.recovered,
      report.invariant_failures, r_p50, r_p99, r_max, restored_state_max);
  std::fprintf(f, "  \"reports_lost_histogram\": {");
  {
    bool first = true;
    for (const auto& [lost, n] : lost_histogram) {
      std::fprintf(f, "%s\"%llu\": %zu", first ? "" : ", ",
                   static_cast<unsigned long long>(lost), n);
      first = false;
    }
  }
  std::fprintf(f, "},\n");
  std::fprintf(f, "  \"rounds\": [\n");
  for (std::size_t i = 0; i < report.rounds.size(); ++i) {
    const auto& r = report.rounds[i];
    std::fprintf(
        f,
        "    {\"round\": %llu, \"kill_point\": \"%s\", \"crashed\": %s, "
        "\"recovered\": %s, \"invariant_ok\": %s, "
        "\"reports_pre_crash\": %llu, \"reports_journaled\": %llu, "
        "\"reports_replayed\": %llu, \"baseline_regressed_s\": %.3f, "
        "\"recovery_ms\": %.3f, \"state_bytes\": %zu}%s\n",
        static_cast<unsigned long long>(r.round),
        campaign::to_string(r.kill_point), r.crashed ? "true" : "false",
        r.recovered ? "true" : "false", r.invariant_ok ? "true" : "false",
        static_cast<unsigned long long>(r.reports_pre_crash),
        static_cast<unsigned long long>(r.reports_journaled),
        static_cast<unsigned long long>(r.reports_replayed),
        r.baseline_regressed_s, r.recovery_ms, r.state_bytes,
        i + 1 < report.rounds.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());

  std::error_code ec;
  std::filesystem::remove_all(dir, ec);

  if (tripwire) {
    bool failed = false;
    if (report.invariant_failures > 0) {
      std::printf("TRIPWIRE: %zu rounds failed the recovery invariant\n",
                  report.invariant_failures);
      failed = true;
    }
    if (reports_lost_total > 0) {
      std::printf("TRIPWIRE: %llu journaled reports lost\n",
                  static_cast<unsigned long long>(reports_lost_total));
      failed = true;
    }
    if (r_p99 > max_recovery_ms) {
      std::printf("TRIPWIRE: recovery p99 %.1fms above ceiling %.1fms\n",
                  r_p99, max_recovery_ms);
      failed = true;
    }
    if (w_max > max_checkpoint_ms) {
      std::printf("TRIPWIRE: checkpoint write max %.1fms above ceiling "
                  "%.1fms\n",
                  w_max, max_checkpoint_ms);
      failed = true;
    }
    if (failed) return 1;
    std::printf(
        "tripwire: ok (0 invariant failures, 0 lost, restore p99 "
        "%.1f <= %.1fms, checkpoint max %.1f <= %.1fms)\n",
        r_p99, max_recovery_ms, w_max, max_checkpoint_ms);
  }
  return 0;
}
