// Reproduces Fig. 5: CDF of fingerprint overlap for 70 representative
// Compute operations against all other categories.
//
// Overlap of a Compute fingerprint = fraction of its unique APIs that also
// appear in any other category's fingerprints.  The paper observes ~90% of
// representative Compute operations have <15% overlap.
#include <algorithm>
#include <cstdio>
#include <set>

#include "bench/harness.h"
#include "util/rng.h"
#include "util/stats.h"

int main() {
  using namespace gretel;

  bench::print_header("Fig. 5: CDF of Compute fingerprint overlap");
  auto env = bench::BenchEnv::make();

  // Union of APIs used by every non-Compute fingerprint.
  std::set<wire::ApiId> other_apis;
  for (const auto& fp : env.training.db.all()) {
    const auto cat =
        env.catalog.operation(fp.op.value()).category;
    if (cat == stack::Category::Compute) continue;
    other_apis.insert(fp.sequence.begin(), fp.sequence.end());
  }

  // 70 representative Compute operations (random, seeded).
  const auto& compute_ops = env.catalog.category_ops(stack::Category::Compute);
  util::Rng rng(1605);
  auto picks = rng.sample_indices(compute_ops.size(), 70);

  std::vector<double> overlaps;
  for (auto pick : picks) {
    const auto& fp =
        env.training.db.get(static_cast<std::uint32_t>(compute_ops[pick]));
    std::set<wire::ApiId> uniq(fp.sequence.begin(), fp.sequence.end());
    std::size_t shared = 0;
    for (auto api : uniq) shared += other_apis.count(api);
    overlaps.push_back(100.0 * static_cast<double>(shared) /
                       static_cast<double>(uniq.size()));
  }

  util::EmpiricalCdf cdf(overlaps);
  std::printf("%-14s %s\n", "overlap (%)", "CDF");
  for (double x : {0.0, 2.0, 5.0, 8.0, 10.0, 12.0, 15.0, 20.0, 30.0, 50.0,
                   100.0}) {
    std::printf("%-14.0f %.3f\n", x, cdf.evaluate(x));
  }

  const double below15 = cdf.evaluate(15.0);
  std::printf("\nfraction of representative Compute ops with <15%% overlap: "
              "%.1f%% (paper: ~90%%)\n",
              100.0 * below15);
  return 0;
}
