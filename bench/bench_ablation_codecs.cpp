// Microbenchmarks of the wire path underlying §7.4.1's throughput: HTTP and
// AMQP serialize/parse, URI normalization, capture-tap decode, and the
// noise filter — the per-message costs between the NIC and the dual buffer.
#include <benchmark/benchmark.h>

#include "gretel/noise_filter.h"
#include "net/capture.h"
#include "stack/deployment.h"
#include "util/rng.h"
#include "wire/amqp_codec.h"
#include "wire/http_codec.h"

namespace {

using namespace gretel;

wire::HttpRequest sample_request() {
  wire::HttpRequest req;
  req.method = wire::HttpMethod::Post;
  req.target = "/v2.0/ports/0a1b2c3d-4e5f-6071-8293-a4b5c6d7e8f9.json";
  req.headers.set("Host", "neutron");
  req.headers.set("X-Service", "nova");
  req.headers.set("X-Auth-Token", "0a1b2c3d-4e5f-6071-8293-a4b5c6d7e8f9");
  req.body = R"({"port": {"network_id": "abc", "tenant_id": "1003"}})";
  return req;
}

wire::AmqpFrame sample_frame() {
  wire::AmqpFrame frame;
  frame.routing_key = "nova-compute.compute-1";
  frame.method_name = "build_and_run_instance";
  frame.msg_id = 0xDEADBEEFull;
  frame.payload = R"({"args": {"instance": "i-1", "tenant_id": "1003"}})";
  return frame;
}

void BM_HttpSerialize(benchmark::State& state) {
  const auto req = sample_request();
  for (auto _ : state) benchmark::DoNotOptimize(wire::serialize(req));
}

void BM_HttpParse(benchmark::State& state) {
  const auto bytes = wire::serialize(sample_request());
  for (auto _ : state) {
    benchmark::DoNotOptimize(wire::parse_http_request(bytes));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(bytes.size()));
}

void BM_AmqpSerialize(benchmark::State& state) {
  const auto frame = sample_frame();
  for (auto _ : state) benchmark::DoNotOptimize(wire::serialize(frame));
}

void BM_AmqpParse(benchmark::State& state) {
  const auto bytes = wire::serialize(sample_frame());
  for (auto _ : state) {
    benchmark::DoNotOptimize(wire::parse_amqp_frame(bytes));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(bytes.size()));
}

void BM_NormalizeUri(benchmark::State& state) {
  const std::string target =
      "/v2.0/ports/0a1b2c3d-4e5f-6071-8293-a4b5c6d7e8f9.json?fields=id";
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::normalize_uri(target));
  }
}

void BM_TapDecodeRest(benchmark::State& state) {
  wire::ApiCatalog catalog;
  catalog.add_rest(wire::ServiceKind::Neutron, wire::HttpMethod::Post,
                   "/v2.0/ports/<ID>.json");
  const auto deployment = stack::Deployment::standard(3);
  net::CaptureTap tap(&catalog, deployment.service_by_port());

  net::WireRecord record;
  record.dst.port = wire::ports::kNeutronApi;
  record.conn_id = 1;
  record.bytes = wire::serialize(sample_request());
  for (auto _ : state) {
    benchmark::DoNotOptimize(tap.decode(record));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(record.bytes.size()));
}

void BM_NoiseFilter(benchmark::State& state) {
  wire::ApiCatalog catalog;
  std::vector<wire::ApiId> trace;
  for (int i = 0; i < 16; ++i) {
    catalog.add_rest(wire::ServiceKind::Nova, wire::HttpMethod::Get,
                     "/g" + std::to_string(i));
  }
  const auto keystone = catalog.add_rest(wire::ServiceKind::Keystone,
                                         wire::HttpMethod::Post, "/auth");
  util::Rng rng(1);
  for (std::size_t i = 0; i < static_cast<std::size_t>(state.range(0));
       ++i) {
    trace.push_back(rng.chance(0.2)
                        ? keystone
                        : wire::ApiId(static_cast<std::uint16_t>(
                              rng.next_below(16))));
  }
  const core::NoiseFilter filter(&catalog);
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.filter(trace));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(trace.size()));
}

}  // namespace

BENCHMARK(BM_HttpSerialize);
BENCHMARK(BM_HttpParse);
BENCHMARK(BM_AmqpSerialize);
BENCHMARK(BM_AmqpParse);
BENCHMARK(BM_NormalizeUri);
BENCHMARK(BM_TapDecodeRest);
BENCHMARK(BM_NoiseFilter)->Arg(100)->Arg(400);

BENCHMARK_MAIN();
