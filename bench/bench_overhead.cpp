// Reproduces §7.4.2: analyzer system overhead while 100 Tempest tests run
// in parallel (the paper reports ~4.26% peak CPU and ~123 MB for the
// analyzer; Bro agents <12.38% CPU and ~1 GB).
//
// We report the analyzer's per-event processing cost (CPU seconds consumed
// per simulated second of workload — the CPU-share analog), and its memory
// growth measured via VmRSS around the run.
#include <cstdio>
#include <cstring>
#include <string>

#include "bench/harness.h"
#include "stack/workflow.h"

namespace {

// Resident set size in MB from /proc/self/status.
double rss_mb() {
  FILE* f = std::fopen("/proc/self/status", "r");
  if (!f) return 0.0;
  char line[256];
  double kb = 0.0;
  while (std::fgets(line, sizeof line, f)) {
    if (std::strncmp(line, "VmRSS:", 6) == 0) {
      std::sscanf(line + 6, "%lf", &kb);
      break;
    }
  }
  std::fclose(f);
  return kb / 1024.0;
}

}  // namespace

int main() {
  using namespace gretel;

  bench::print_header("Section 7.4.2: analyzer overhead (100 parallel tests)");
  auto env = bench::BenchEnv::make();

  tempest::WorkloadSpec spec;
  spec.concurrent_tests = 100;
  spec.faults = 0;
  spec.window = util::SimDuration::minutes(6);  // the paper's ~6-minute run
  spec.seed = 742;
  const auto workload = make_parallel_workload(env.catalog, spec);

  stack::WorkflowExecutor executor(&env.deployment, &env.catalog.apis(),
                                   &env.catalog.infra(), 74);
  const auto records = executor.execute(workload.launches);
  const double workload_span =
      (records.back().ts - records.front().ts).to_seconds();

  const double rss_before = rss_mb();
  auto options = env.analyzer_options(
      static_cast<double>(records.size()) / workload_span);
  core::Analyzer analyzer(&env.training.db, &env.catalog.apis(),
                          &env.deployment, options);

  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t bytes = 0;
  for (const auto& r : records) {
    analyzer.on_wire(r);
    bytes += r.bytes.size();
  }
  analyzer.finish();
  const double cpu_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const double rss_after = rss_mb();

  std::printf("workload: %zu records over %.0f simulated seconds\n",
              records.size(), workload_span);
  std::printf("analyzer CPU time: %.3f s -> %.3f%% of one core while the "
              "workload ran (paper: ~4.26%% peak)\n",
              cpu_seconds, 100.0 * cpu_seconds / workload_span);
  std::printf("analyzer memory growth: %.1f MB (RSS %.1f -> %.1f MB; "
              "paper: ~123 MB)\n",
              rss_after - rss_before, rss_before, rss_after);
  std::printf("events processed: %llu (%.0f events/s, %.2f Mbps)\n",
              static_cast<unsigned long long>(
                  analyzer.detector_stats().events),
              analyzer.detector_stats().events / cpu_seconds,
              static_cast<double>(bytes) * 8.0 / 1e6 / cpu_seconds);

  // The same capture through the sharded pipeline.  Wall-clock drops with
  // real cores; total CPU across the coordinator and shard workers is what
  // an operator pays, so both are reported.
  {
    auto sharded = options;
    sharded.config.num_shards = 4;
    sharded.config.num_match_workers = 2;
    const double rss0 = rss_mb();
    core::Analyzer concurrent(&env.training.db, &env.catalog.apis(),
                              &env.deployment, sharded);
    const auto s0 = std::chrono::steady_clock::now();
    for (const auto& r : records) concurrent.on_wire(r);
    concurrent.finish();
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - s0)
            .count();
    std::printf("\nsharded (4 shards, 2 match workers):\n");
    std::printf("wall-clock: %.3f s -> %.3f%% of one core equivalent "
                "(serial path: %.3f s)\n",
                wall, 100.0 * wall / workload_span, cpu_seconds);
    std::printf("memory growth: %.1f MB (ring buffers + per-shard "
                "trackers)\n", rss_mb() - rss0);
  }
  return 0;
}
