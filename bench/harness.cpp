#include "bench/harness.h"

#include <chrono>
#include <cstdio>
#include <thread>
#include <unordered_map>

#include "stack/workflow.h"

namespace gretel::bench {

BenchEnv BenchEnv::make(double fraction, std::uint64_t seed) {
  BenchEnv env{tempest::TempestCatalog::build(seed, fraction),
               stack::Deployment::standard(3), core::TrainingReport{}};
  env.training = core::learn_fingerprints(env.catalog, env.deployment);
  return env;
}

core::Analyzer::Options BenchEnv::analyzer_options(double p_rate) const {
  core::Analyzer::Options opt;
  opt.config.fp_max = training.fp_max;
  opt.config.p_rate = p_rate;
  opt.run_root_cause = false;
  return opt;
}

double PrecisionRun::detection_rate() const {
  if (faults.empty()) return 0.0;
  std::size_t n = 0;
  for (const auto& f : faults) n += f.detected;
  return static_cast<double>(n) / static_cast<double>(faults.size());
}

double PrecisionRun::identification_rate() const {
  if (faults.empty()) return 0.0;
  std::size_t n = 0;
  for (const auto& f : faults) n += f.identified;
  return static_cast<double>(n) / static_cast<double>(faults.size());
}

double PrecisionRun::avg_theta() const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& f : faults) {
    if (f.detected) {
      sum += f.theta;
      ++n;
    }
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

double PrecisionRun::avg_matched() const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& f : faults) {
    if (f.detected) {
      sum += static_cast<double>(f.matched);
      ++n;
    }
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

double PrecisionRun::avg_candidates() const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& f : faults) {
    if (f.detected) {
      sum += static_cast<double>(f.candidates);
      ++n;
    }
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

PrecisionRun run_precision(BenchEnv& env,
                           const tempest::GeneratedWorkload& workload,
                           const RunConfig& config) {
  PrecisionRun result;

  // Capture the workload's wire traffic.
  stack::WorkflowExecutor::Options exec_options;
  exec_options.emit_correlation_ids = config.correlation_ids;
  stack::WorkflowExecutor executor(&env.deployment, &env.catalog.apis(),
                                   &env.catalog.infra(),
                                   config.executor_seed, exec_options);
  const auto records = executor.execute(workload.launches);
  if (records.empty()) return result;

  const double span =
      (records.back().ts - records.front().ts).to_seconds();
  result.p_rate = span > 0 ? static_cast<double>(records.size()) / span
                           : 1000.0;

  auto options = env.analyzer_options(std::max(result.p_rate, 150.0));
  options.config.match_rpc = config.match_rpc;
  options.config.backend = config.backend;
  core::Analyzer analyzer(&env.training.db, &env.catalog.apis(),
                          &env.deployment, options);

  const auto start = std::chrono::steady_clock::now();
  for (const auto& r : records) {
    analyzer.on_wire(r);
    result.wire_bytes += r.bytes.size();
  }
  analyzer.finish();
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  result.events = analyzer.detector_stats().events;

  // Map each diagnosis to the ground-truth faulty instance whose error
  // *anchors* it (the error event on the offending API); overlapping fault
  // windows carry foreign errors, so containment alone would attribute a
  // report to the wrong fault.  Containment fills the gaps afterwards.
  std::unordered_map<std::uint32_t, const core::FaultReport*> by_instance;
  for (const auto& d : analyzer.diagnoses()) {
    for (const auto& ev : d.fault.error_events) {
      if (!ev.is_error() || !ev.truth_instance.valid()) continue;
      if (ev.api != d.fault.offending_api) continue;
      by_instance.try_emplace(ev.truth_instance.value(), &d.fault);
    }
  }
  for (const auto& d : analyzer.diagnoses()) {
    for (const auto& ev : d.fault.error_events) {
      if (!ev.is_error() || !ev.truth_instance.valid()) continue;
      by_instance.try_emplace(ev.truth_instance.value(), &d.fault);
    }
  }

  for (auto launch_idx : workload.faulty_launch_idx) {
    FaultOutcome outcome;
    // A fresh executor assigns instance i+1 to launches[i].
    const auto instance = static_cast<std::uint32_t>(launch_idx + 1);
    const auto it = by_instance.find(instance);
    if (it != by_instance.end()) {
      const auto& fault = *it->second;
      outcome.detected = true;
      outcome.matched = fault.matched_fingerprints.size();
      outcome.candidates = fault.candidates;
      outcome.theta = fault.theta;
      outcome.beta_final = fault.beta_final;
      const auto truth = workload.launches[launch_idx].op->id;
      for (auto idx : fault.matched_fingerprints) {
        outcome.identified =
            outcome.identified || env.training.db.get(idx).op == truth;
      }
    }
    result.faults.push_back(outcome);
  }
  return result;
}

void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

unsigned host_cpus() { return std::thread::hardware_concurrency(); }

namespace {

const char* compiler_string() {
#if defined(__clang__)
  return "clang " __clang_version__;
#elif defined(__GNUC__)
  return "gcc " __VERSION__;
#else
  return "unknown";
#endif
}

bool build_optimized() {
#if defined(__OPTIMIZE__)
  return true;
#else
  return false;
#endif
}

bool build_ndebug() {
#if defined(NDEBUG)
  return true;
#else
  return false;
#endif
}

}  // namespace

void write_bench_meta(std::FILE* f, const BenchRunMeta& meta) {
  std::fprintf(f,
               "  \"meta\": {\n"
               "    \"benchmark\": \"%s\",\n"
               "    \"schema_version\": %d,\n"
               "    \"events_measured\": %zu,\n"
               "    \"pool_records\": %zu,\n"
               "    \"ingest_batch\": %zu,\n"
               "    \"drain_interval\": %zu,\n"
               "    \"host_cpus\": %u,\n"
               "    \"compiler\": \"%s\",\n"
               "    \"optimized\": %s,\n"
               "    \"ndebug\": %s\n"
               "  }",
               meta.benchmark.c_str(), meta.schema_version,
               meta.events_measured, meta.pool_records, meta.ingest_batch,
               meta.drain_interval, host_cpus(), compiler_string(),
               build_optimized() ? "true" : "false",
               build_ndebug() ? "true" : "false");
}

}  // namespace gretel::bench
