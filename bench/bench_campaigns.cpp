// Fault-campaign sweep: orchestrated multi-fault scenarios through the
// full capture→detect→diagnose pipeline, with failure-mode clustering and
// a coverage/novelty report (BENCH_campaigns.json).
//
// The campaign methodology follows the fault-injection-analytics loop of
// arXiv:2010.00331: enumerate a fault space (fault class × injection site
// × intensity × timing × workload mix), execute every scenario under a
// derived seed, collapse the resulting reports to canonical fingerprints,
// and read coverage per fault class — localized / missed / misattributed /
// crashed — off the clustered outcomes.
//
//   --scenarios N      sweep size (default 500)
//   --seed S           campaign seed (default 0xCA59A16E)
//   --fraction F       Tempest catalog fraction (default 0.12)
//   --budget N         per-scenario event budget (default 200000)
//   --recheck K        re-run the first K scenarios and require identical
//                      fingerprints/outcomes (default 10; 0 disables)
//   --out PATH         JSON report path (default BENCH_campaigns.json)
//   --tripwire         fail (exit 1) on: localized fraction below
//                      --min-localized, any crashed scenario, or a
//                      determinism recheck mismatch
//   --min-localized F  tripwire floor on the localized fraction (0.55)
#include <chrono>
#include <cstdio>
#include <string>

#include "bench/harness.h"
#include "campaign/cluster.h"
#include "campaign/orchestrator.h"
#include "tools/cli_common.h"

int main(int argc, char** argv) {
  using namespace gretel;
  tools::Args args(argc, argv);

  const auto scenarios =
      static_cast<std::size_t>(args.get_int("--scenarios", 500));
  const auto seed = static_cast<std::uint64_t>(
      args.get_int("--seed", 0xCA59A16EL));
  const double fraction = args.get_double("--fraction", 0.12);
  const auto budget = static_cast<std::size_t>(
      args.get_int("--budget", 200000));
  const auto recheck = static_cast<std::size_t>(
      args.get_int("--recheck", 10));
  const std::string out_path =
      args.get("--out").value_or("BENCH_campaigns.json");
  const bool tripwire = args.has_flag("--tripwire");
  const double min_localized = args.get_double("--min-localized", 0.55);

  bench::print_header("fault campaign: multi-fault sweep + clustering");
  auto env = bench::BenchEnv::make(fraction, 0xC0DE2016ull);

  campaign::CampaignPlan plan;
  plan.seed = seed;
  plan.scenarios = scenarios;
  plan.budget_events = budget;
  campaign::ScenarioGenerator generator(&env.catalog, plan);
  campaign::CampaignOrchestrator orchestrator(&env.catalog, &env.training,
                                              plan);

  const auto specs = generator.generate();
  const auto start = std::chrono::steady_clock::now();
  const auto results = orchestrator.run_all(specs);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const auto summary = campaign::summarize(results);

  // Determinism recheck: scenario generation and orchestration are pure
  // functions of the campaign seed, so a re-run must reproduce the exact
  // fingerprint and outcome.
  std::size_t recheck_failures = 0;
  const auto rechecked = std::min(recheck, results.size());
  for (std::size_t i = 0; i < rechecked; ++i) {
    const auto again = orchestrator.run(generator.generate_one(i));
    if (again.fingerprint != results[i].fingerprint ||
        again.outcome != results[i].outcome) {
      ++recheck_failures;
      std::printf("RECHECK MISMATCH scenario %zu: %016llx/%s vs %016llx/%s\n",
                  i,
                  static_cast<unsigned long long>(results[i].fingerprint),
                  to_string(results[i].outcome),
                  static_cast<unsigned long long>(again.fingerprint),
                  to_string(again.outcome));
    }
  }

  std::uint64_t total_events = 0;
  for (const auto& r : results) total_events += r.events;

  std::printf("%-22s %-6s %-10s %-8s %-14s %-8s %-9s\n", "class", "runs",
              "localized", "missed", "misattributed", "crashed", "clusters");
  for (std::size_t c = 0; c < campaign::kFaultClasses; ++c) {
    const auto& cc = summary.per_class[c];
    std::printf("%-22s %-6zu %-10zu %-8zu %-14zu %-8zu %-9zu\n",
                to_string(static_cast<campaign::FaultClass>(c)),
                cc.scenarios, cc.outcomes[0], cc.outcomes[1], cc.outcomes[2],
                cc.outcomes[3], cc.distinct_fingerprints);
  }
  std::printf("\n%zu scenarios, %.1f%% localized, %zu failure modes "
              "(%zu singleton), %llu events, %.1fs\n",
              summary.scenarios, 100.0 * summary.localized_fraction(),
              summary.distinct_fingerprints, summary.singleton_fingerprints,
              static_cast<unsigned long long>(total_events), wall);

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  bench::BenchRunMeta meta;
  meta.benchmark = "campaigns";
  meta.events_measured = static_cast<std::size_t>(total_events);
  std::fprintf(f, "{\n");
  bench::write_bench_meta(f, meta);
  std::fprintf(f,
               ",\n  \"campaign\": {\"seed\": %llu, \"scenarios\": %zu, "
               "\"fraction\": %.4f, \"budget_events\": %zu, "
               "\"recheck\": %zu, \"recheck_failures\": %zu, "
               "\"wall_seconds\": %.3f},\n",
               static_cast<unsigned long long>(seed), scenarios, fraction,
               budget, rechecked, recheck_failures, wall);
  std::string body;
  campaign::append_summary_json(body, summary);
  std::fprintf(f, "  \"summary\": %s\n}\n", body.c_str());
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());

  if (tripwire) {
    bool failed = false;
    if (recheck_failures) {
      std::printf("TRIPWIRE: %zu determinism recheck failures\n",
                  recheck_failures);
      failed = true;
    }
    const auto crashed =
        summary.outcomes[static_cast<std::size_t>(
            campaign::Outcome::Crashed)];
    if (crashed) {
      std::printf("TRIPWIRE: %zu crashed scenarios (exception or audit "
                  "reconciliation failure)\n", crashed);
      failed = true;
    }
    if (summary.localized_fraction() < min_localized) {
      std::printf("TRIPWIRE: localized fraction %.3f below floor %.3f\n",
                  summary.localized_fraction(), min_localized);
      failed = true;
    }
    if (failed) return 1;
    std::printf("tripwire: ok (localized %.3f >= %.3f, 0 crashes, "
                "recheck clean)\n",
                summary.localized_fraction(), min_localized);
  }
  return 0;
}
