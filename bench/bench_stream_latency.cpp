// Streaming detection latency: the fault-injection-to-first-report
// distribution and the bounded-state ceiling of the StreamAnalyzer
// (BENCH_stream_latency.json).
//
// Each run executes a fresh faulty workload, replays the capture through
// the streaming front end in arrival order (advance_to() driving the tick
// grid from record timestamps), and attributes every emitted report back
// to its injected fault via ground-truth instance labels on the error
// events.  A fault's latency is the emission watermark of the first report
// naming its instance minus the faulty operation's launch time — the full
// injection → manifestation → trigger → context-fill → tick-drain →
// emission path, in stream time.
//
// A separate overload leg repeats one run with the source ring squeezed
// (--overload-ring) at the same offered rate, proving the shed ledger
// reconciles exactly (offered == ingested + shed) and the peak state stays
// under the tripwire ceiling even while shedding.
//
//   --runs N             measured runs (default 10)
//   --tests N            background workload per run (default 24)
//   --faults N           injected faults per run (default 4)
//   --window S           workload window seconds (default 45)
//   --fraction F         Tempest catalog fraction (default 0.12)
//   --seed S             root seed (default 0x57A71E57)
//   --tick-ms T          detection tick cadence (default 250)
//   --shards N           analysis shards (default 1)
//   --overload-ring N    source-ring size for the overload leg (default 96)
//   --out PATH           JSON path (default BENCH_stream_latency.json)
//   --tripwire           fail (exit 1) on: p99 above --max-p99-ms, peak
//                        state above --max-state-mb, detection rate below
//                        --min-detected, or a flow-ledger mismatch
//   --max-p99-ms X       p99 latency ceiling (default 5000)
//   --max-state-mb X     peak approx-state ceiling (default 64)
//   --min-detected F     detected-fraction floor (default 0.7)
#include <algorithm>
#include <cstdio>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench/harness.h"
#include "stack/workflow.h"
#include "stream/stream_analyzer.h"
#include "tempest/workload.h"
#include "tools/cli_common.h"
#include "util/seed.h"

namespace {

using namespace gretel;

double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

struct RunOutcome {
  std::size_t faults = 0;
  std::size_t detected = 0;
  std::vector<double> latencies_ms;  // one per detected fault
  stream::StreamCounters counters;
  std::size_t peak_state_bytes = 0;
  std::size_t queued_after_finish = 0;
};

RunOutcome run_stream(bench::BenchEnv& env, std::uint64_t seed, int tests,
                      int faults, long window_s, double tick_ms,
                      std::size_t shards, std::size_t ring) {
  tempest::WorkloadSpec wspec;
  wspec.concurrent_tests = tests;
  wspec.faults = faults;
  wspec.window = util::SimDuration::seconds(window_s);
  wspec.seed = util::derive_seed(seed, util::SeedStream::Workload);
  const auto workload = tempest::make_parallel_workload(env.catalog, wspec);

  stack::WorkflowExecutor executor(
      &env.deployment, &env.catalog.apis(), &env.catalog.infra(),
      util::derive_seed(seed, util::SeedStream::Executor));
  const auto records = executor.execute(workload.launches);

  const double span_s =
      records.empty()
          ? 0.0
          : (records.back().ts - records.front().ts).to_seconds();
  const double p_rate =
      span_s > 0 ? static_cast<double>(records.size()) / span_s : 150.0;

  auto opt = env.analyzer_options(std::max(p_rate, 150.0));
  opt.config.num_shards = shards;
  opt.config.stream_tick_ms = tick_ms;
  if (ring > 0) opt.config.stream_source_ring = ring;

  // instance label -> earliest emission watermark naming it.
  std::unordered_map<std::uint32_t, util::SimTime> first_named;
  stream::StreamAnalyzer streamer(
      &env.training.db, &env.catalog.apis(), &env.deployment, opt,
      [&](const stream::StreamReport& r) {
        for (const auto& ev : r.diagnosis.fault.error_events) {
          if (!ev.is_error() || !ev.truth_instance.valid()) continue;
          first_named.try_emplace(ev.truth_instance.value(), r.emitted_at);
        }
      });
  for (const auto& r : records) {
    streamer.advance_to(r.ts);
    streamer.offer(r);
  }
  streamer.finish();

  RunOutcome out;
  out.faults = workload.faulty_launch_idx.size();
  for (auto launch_idx : workload.faulty_launch_idx) {
    const auto it =
        first_named.find(static_cast<std::uint32_t>(launch_idx + 1));
    if (it == first_named.end()) continue;
    ++out.detected;
    const auto injected = workload.launches[launch_idx].start;
    out.latencies_ms.push_back(
        std::max(0.0, (it->second - injected).to_millis()));
  }
  out.counters = streamer.counters();
  out.peak_state_bytes = streamer.peak_state_bytes();
  out.queued_after_finish = streamer.queued();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  tools::Args args(argc, argv);

  const auto runs = static_cast<std::size_t>(args.get_int("--runs", 10));
  const int tests = static_cast<int>(args.get_int("--tests", 24));
  const int faults = static_cast<int>(args.get_int("--faults", 4));
  const long window_s = args.get_int("--window", 45);
  const double fraction = args.get_double("--fraction", 0.12);
  const auto seed =
      static_cast<std::uint64_t>(args.get_int("--seed", 0x57A71E57L));
  const double tick_ms = args.get_double("--tick-ms", 250.0);
  const auto shards =
      static_cast<std::size_t>(args.get_int("--shards", 1));
  const auto overload_ring =
      static_cast<std::size_t>(args.get_int("--overload-ring", 96));
  const std::string out_path =
      args.get("--out").value_or("BENCH_stream_latency.json");
  const bool tripwire = args.has_flag("--tripwire");
  const double max_p99_ms = args.get_double("--max-p99-ms", 5000.0);
  const double max_state_mb = args.get_double("--max-state-mb", 64.0);
  const double min_detected = args.get_double("--min-detected", 0.7);

  bench::print_header("stream latency: fault injection -> first report");
  auto env = bench::BenchEnv::make(fraction, 0xC0DE2016ull);

  std::vector<double> latencies;
  std::size_t faults_total = 0, faults_detected = 0;
  std::size_t peak_state = 0;
  std::uint64_t flow_mismatches = 0;
  std::uint64_t total_offered = 0, total_shed = 0, total_ticks = 0;
  for (std::size_t r = 0; r < runs; ++r) {
    const auto out = run_stream(env, util::derive_seed(seed, 0x11CE, r),
                                tests, faults, window_s, tick_ms, shards,
                                /*ring=*/0);
    faults_total += out.faults;
    faults_detected += out.detected;
    latencies.insert(latencies.end(), out.latencies_ms.begin(),
                     out.latencies_ms.end());
    peak_state = std::max(peak_state, out.peak_state_bytes);
    total_offered += out.counters.offered;
    total_shed += out.counters.shed;
    total_ticks += out.counters.ticks;
    if (out.counters.offered !=
            out.counters.ingested + out.counters.shed ||
        out.queued_after_finish != 0)
      ++flow_mismatches;
  }
  std::sort(latencies.begin(), latencies.end());
  const double p50 = percentile(latencies, 0.50);
  const double p95 = percentile(latencies, 0.95);
  const double p99 = percentile(latencies, 0.99);
  const double lat_max = latencies.empty() ? 0.0 : latencies.back();
  const double detected_frac =
      faults_total ? static_cast<double>(faults_detected) /
                         static_cast<double>(faults_total)
                   : 0.0;

  // Overload leg: same stream, source ring squeezed far below the offered
  // backlog so the shed path and the gate hysteresis actually engage.  The
  // tick is slowed to model a consumer that drains slower than the
  // producer offers — per-tick arrivals must exceed the ring or the
  // steady drain would hide the overload.
  const double overload_tick_ms =
      args.get_double("--overload-tick-ms", 2000.0);
  const auto overload =
      run_stream(env, util::derive_seed(seed, 0x11CE, 0), tests, faults,
                 window_s, overload_tick_ms, shards, overload_ring);
  const bool overload_reconciles =
      overload.counters.offered ==
          overload.counters.ingested + overload.counters.shed &&
      overload.queued_after_finish == 0;
  peak_state = std::max(peak_state, overload.peak_state_bytes);

  std::printf(
      "%zu runs, %zu faults, %zu detected (%.2f), %llu ticks\n"
      "latency ms: p50=%.1f p95=%.1f p99=%.1f max=%.1f\n"
      "overload: ring=%zu shed=%llu/%llu episodes=%llu reconciled=%s\n"
      "peak state ~%.2f MiB\n",
      runs, faults_total, faults_detected, detected_frac,
      static_cast<unsigned long long>(total_ticks), p50, p95, p99, lat_max,
      overload_ring,
      static_cast<unsigned long long>(overload.counters.shed),
      static_cast<unsigned long long>(overload.counters.offered),
      static_cast<unsigned long long>(overload.counters.shed_episodes),
      overload_reconciles ? "yes" : "NO",
      static_cast<double>(peak_state) / (1024.0 * 1024.0));

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  bench::BenchRunMeta meta;
  meta.benchmark = "stream_latency";
  meta.events_measured = static_cast<std::size_t>(total_offered);
  std::fprintf(f, "{\n");
  bench::write_bench_meta(f, meta);
  std::fprintf(
      f,
      ",\n  \"stream\": {\"runs\": %zu, \"tick_ms\": %.1f, \"shards\": %zu, "
      "\"faults_total\": %zu, \"faults_detected\": %zu, "
      "\"detected_fraction\": %.4f, \"ticks\": %llu, "
      "\"offered\": %llu, \"shed\": %llu, \"flow_mismatches\": %llu},\n",
      runs, tick_ms, shards, faults_total, faults_detected, detected_frac,
      static_cast<unsigned long long>(total_ticks),
      static_cast<unsigned long long>(total_offered),
      static_cast<unsigned long long>(total_shed),
      static_cast<unsigned long long>(flow_mismatches));
  std::fprintf(
      f,
      "  \"latency_ms\": {\"p50\": %.2f, \"p95\": %.2f, \"p99\": %.2f, "
      "\"max\": %.2f},\n",
      p50, p95, p99, lat_max);
  std::fprintf(
      f,
      "  \"overload\": {\"ring\": %zu, \"offered\": %llu, "
      "\"ingested\": %llu, \"shed\": %llu, \"shed_episodes\": %llu, "
      "\"reconciled\": %s, \"peak_state_bytes\": %zu},\n",
      overload_ring,
      static_cast<unsigned long long>(overload.counters.offered),
      static_cast<unsigned long long>(overload.counters.ingested),
      static_cast<unsigned long long>(overload.counters.shed),
      static_cast<unsigned long long>(overload.counters.shed_episodes),
      overload_reconciles ? "true" : "false", overload.peak_state_bytes);
  std::fprintf(f, "  \"peak_state_bytes\": %zu\n}\n", peak_state);
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());

  if (tripwire) {
    bool failed = false;
    if (p99 > max_p99_ms) {
      std::printf("TRIPWIRE: p99 %.1fms above ceiling %.1fms\n", p99,
                  max_p99_ms);
      failed = true;
    }
    const double peak_mb =
        static_cast<double>(peak_state) / (1024.0 * 1024.0);
    if (peak_mb > max_state_mb) {
      std::printf("TRIPWIRE: peak state %.2fMiB above ceiling %.2fMiB\n",
                  peak_mb, max_state_mb);
      failed = true;
    }
    if (detected_frac < min_detected) {
      std::printf("TRIPWIRE: detected fraction %.3f below floor %.3f\n",
                  detected_frac, min_detected);
      failed = true;
    }
    if (flow_mismatches || !overload_reconciles) {
      std::printf("TRIPWIRE: flow ledger mismatch (%llu runs, overload "
                  "reconciled=%s)\n",
                  static_cast<unsigned long long>(flow_mismatches),
                  overload_reconciles ? "yes" : "no");
      failed = true;
    }
    if (failed) return 1;
    std::printf("tripwire: ok (p99 %.1f <= %.1fms, state %.2f <= %.2fMiB, "
                "detected %.3f >= %.3f, ledger exact)\n",
                p99, max_p99_ms, peak_mb, max_state_mb, detected_frac,
                min_detected);
  }
  return 0;
}
