// Reproduces Fig. 8a: operations matched when 16 identical faulty
// operations run concurrently with {100..400} background tests.
//
// The paper observes the average number of matched operations *decreases*
// as concurrency grows: the context buffer expands with load, forcing a
// more precise match against the truncated fingerprints.
#include <cstdio>

#include "bench/harness.h"

int main() {
  using namespace gretel;

  bench::print_header(
      "Fig. 8a: 16 identical concurrent faulty operations");
  auto env = bench::BenchEnv::make();

  // A mid-sized Compute operation as the repeated faulty task.
  const auto faulty_op = env.catalog.canonical().vm_create;

  std::printf("%-10s %-14s %-12s %-12s\n", "parallel", "avg matched",
              "avg theta", "identified");
  for (int tests : {100, 200, 300, 400}) {
    tempest::WorkloadSpec spec;
    spec.concurrent_tests = tests;
    spec.faults = 16;
    spec.identical_faulty_op = faulty_op;
    spec.window = util::SimDuration::seconds(60);
    spec.seed = static_cast<std::uint64_t>(8000 + tests);
    const auto workload = make_parallel_workload(env.catalog, spec);

    bench::RunConfig config;
    config.executor_seed = spec.seed ^ 0x8Aull;
    const auto run = bench::run_precision(env, workload, config);
    std::printf("%-10d %-14.2f %-12.4f %-12.2f\n", tests, run.avg_matched(),
                run.avg_theta(), run.identification_rate());
  }
  std::printf("\npaper: matched operations decrease steadily as concurrency "
              "increases (larger context buffer -> more precise match)\n");
  return 0;
}
