// Ingestion hot-path benchmark: decode + API resolution throughput and
// heap-allocation counts, before and after the arena/string_view rework.
//
// Two claims are measured and recorded in BENCH_ingest.json:
//  1. events/sec on decode+resolve: the zero-copy view parsers + transparent
//     catalog lookup versus the legacy owning parsers + allocating
//     normalize_uri + string-keyed lookup (kept in this binary as the
//     baseline comparator).
//  2. allocations/event: a counting global operator new shows the warmed-up
//     CaptureTap performs zero steady-state heap allocations per decoded
//     event; the legacy path pays several per message.
//
// Also runs the shard-scaling sweep: end-to-end ingestion (decode +
// detector) events/sec for every shard count in --shards × {per-event,
// batched}, recorded in BENCH_shard_scaling.json together with the scaling
// ratios and a determinism cross-check (detector stats must be identical
// across every swept configuration — the pipeline contract).
//
// Usage: bench_ingest_hotpath [--events N] [--out PATH]
//                             [--shards LIST] [--scaling-out PATH]
//                             [--tripwire]
//   --shards      comma-separated shard counts to sweep (default 1,2,4,8)
//   --scaling-out where to write the sweep JSON (default
//                 BENCH_shard_scaling.json)
//   --tripwire    exit non-zero if 4-shard batched regresses vs 1-shard
//                 batched: below parity on hosts with ≥ 6 CPUs, below the
//                 0.6× single-core floor otherwise (see docs/PERFORMANCE.md)
#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <optional>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "net/capture.h"
#include "wire/amqp_codec.h"
#include "wire/http_codec.h"

// ---------------------------------------------------------------------------
// Counting allocator hook.  Relaxed atomics: the decode measurements are
// single-threaded; the sharded ingest section only uses wall-clock time.
// ---------------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<bool> g_count_allocs{false};

inline void count_alloc() {
  if (g_count_allocs.load(std::memory_order_relaxed))
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace

void* operator new(std::size_t size) {
  count_alloc();
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  count_alloc();
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (size + static_cast<std::size_t>(align) - 1) &
                                       ~(static_cast<std::size_t>(align) - 1))) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using namespace gretel;

// ---------------------------------------------------------------------------
// Synthetic capture: a clean (fault-free) record pool cycling over every
// catalog API — request/response pairs for REST, publish/deliver for RPC —
// with a bounded conn-id set so the tap's per-stream map reaches a steady
// state during warmup.
// ---------------------------------------------------------------------------

std::string instantiate_template(std::string_view tmpl) {
  std::string out;
  std::size_t pos = 0;
  while (pos < tmpl.size()) {
    const auto id = tmpl.find("<ID>", pos);
    if (id == std::string_view::npos) {
      out.append(tmpl.substr(pos));
      break;
    }
    out.append(tmpl.substr(pos, id - pos));
    out.append("0a1b2c3d-4e5f-6071-8293-a4b5c6d7e8f9");
    pos = id + 4;
  }
  return out;
}

std::vector<net::WireRecord> build_pool(const bench::BenchEnv& env) {
  // Reverse the port map so each REST request lands on its service's port.
  const auto by_port = env.deployment.service_by_port();
  std::unordered_map<wire::ServiceKind, std::uint16_t> port_of;
  for (const auto& [port, svc] : by_port) port_of.emplace(svc, port);

  // Message shapes modeled on real OpenStack API traffic: every client call
  // carries a keystone fernet token (~180 chars), content-negotiation
  // headers, and a JSON body; responses echo the request id and return a
  // JSON resource representation.
  const std::string auth_token =
      "gAAAAABkZ3J1dGVsLWJlbmNoLXRva2Vu" +
      std::string(150, 'X');  // fernet tokens run ~180-250 chars
  const std::string req_body =
      R"({"server": {"name": "bench-vm", "imageRef": )"
      R"("0a1b2c3d-4e5f-6071-8293-a4b5c6d7e8f9", "flavorRef": "42", )"
      R"("networks": [{"uuid": "11112222-3333-4444-5555-666677778888"}]}})";
  const std::string resp_body =
      R"({"server": {"id": "0a1b2c3d-4e5f-6071-8293-a4b5c6d7e8f9", )"
      R"("status": "BUILD", "links": [{"href": )"
      R"("http://controller:8774/v2.1/servers/0a1b2c3d", "rel": "self"}], )"
      R"("OS-EXT-STS:task_state": "scheduling"}})";
  const std::string rpc_args =
      R"({"oslo.version": "2.0", "oslo.message": {"method": "%s", )"
      R"("args": {"instance_uuid": "0a1b2c3d-4e5f-6071-8293-a4b5c6d7e8f9", )"
      R"("host": "compute-1", "request_spec": {"num_instances": 1}}}})";

  std::vector<net::WireRecord> pool;
  std::uint32_t conn = 1;
  std::uint64_t msg_id = 1;
  for (const auto& api : env.catalog.apis().all()) {
    if (api.kind == wire::ApiKind::Rest) {
      const auto port_it = port_of.find(api.service);
      if (port_it == port_of.end()) continue;
      wire::HttpRequest req;
      req.method = api.method;
      req.target = instantiate_template(api.path);
      req.headers.set("Host", std::string(wire::to_string(api.service)));
      req.headers.set("User-Agent", "python-openstackclient keystoneauth1");
      req.headers.set("Accept", "application/json");
      req.headers.set("Accept-Encoding", "gzip, deflate");
      req.headers.set("Connection", "keep-alive");
      req.headers.set("Content-Type", "application/json");
      req.headers.set("X-Auth-Token", auth_token);
      req.headers.set("X-Openstack-Request-Id",
                      "req-" + std::to_string(conn));
      if (req.method != wire::HttpMethod::Get) req.body = req_body;

      net::WireRecord r;
      r.conn_id = conn;
      r.dst.port = port_it->second;
      r.bytes = serialize(req);
      pool.push_back(r);

      wire::HttpResponse resp;
      resp.status = 200;
      resp.headers.set("Content-Type", "application/json");
      resp.headers.set("Vary", "X-OpenStack-Nova-API-Version");
      resp.headers.set("Date", "Tue, 05 Aug 2026 12:00:00 GMT");
      resp.headers.set("Connection", "keep-alive");
      resp.headers.set("X-Openstack-Request-Id",
                       "req-" + std::to_string(conn));
      resp.body = resp_body;
      net::WireRecord rr;
      rr.conn_id = conn;
      rr.dst.port = 0;  // responses resolve via the stream, not the port
      rr.bytes = serialize(resp);
      pool.push_back(rr);
      conn = conn % 64 + 1;  // bounded stream-id set -> steady-state map
    } else {
      wire::AmqpFrame frame;
      frame.routing_key =
          std::string(wire::to_string(api.service)) + ".node-1";
      frame.method_name = api.rpc_method;
      frame.msg_id = msg_id++;
      frame.correlation_id = conn;
      frame.type = wire::AmqpFrameType::Publish;
      frame.payload = rpc_args;
      net::WireRecord pub;
      pub.is_amqp = true;
      pub.bytes = serialize(frame);
      pool.push_back(pub);

      frame.type = wire::AmqpFrameType::Deliver;
      frame.payload = R"({"oslo.reply": {"result": {"host": "compute-1", )"
                      R"("nodename": "compute-1.domain", "limits": {}}, )"
                      R"("ending": true}})";
      net::WireRecord del;
      del.is_amqp = true;
      del.bytes = serialize(frame);
      pool.push_back(del);
    }
  }
  // Spread timestamps so the latency pairing sees sane deltas.
  for (std::size_t i = 0; i < pool.size(); ++i) {
    pool[i].ts = util::SimTime(static_cast<std::int64_t>(i) * 500'000);
  }
  return pool;
}

// ---------------------------------------------------------------------------
// Legacy decode+resolve: a faithful reproduction of the pre-rework tap —
// owning parsers copying every header into std::strings, the allocating
// normalize_uri, and the string-keyed catalog maps whose every lookup
// built a key string.  Reproduced here (from the pre-rework sources) so
// the baseline does not silently inherit this PR's improvements.
// ---------------------------------------------------------------------------

std::optional<std::string_view> legacy_take_line(std::string_view& rest) {
  const auto pos = rest.find("\r\n");
  if (pos == std::string_view::npos) return std::nullopt;
  std::string_view line = rest.substr(0, pos);
  rest.remove_prefix(pos + 2);
  return line;
}

bool legacy_parse_headers(std::string_view& rest, wire::HttpHeaders& out) {
  while (true) {
    auto line = legacy_take_line(rest);
    if (!line) return false;
    if (line->empty()) return true;
    const auto colon = line->find(':');
    if (colon == std::string_view::npos || colon == 0) return false;
    std::string_view name = line->substr(0, colon);
    std::string_view value = line->substr(colon + 1);
    while (!value.empty() && value.front() == ' ') value.remove_prefix(1);
    out.set(std::string(name), std::string(value));
  }
}

std::optional<wire::HttpRequest> legacy_parse_request(std::string_view bytes) {
  std::string_view rest = bytes;
  auto line = legacy_take_line(rest);
  if (!line) return std::nullopt;
  const auto sp1 = line->find(' ');
  if (sp1 == std::string_view::npos) return std::nullopt;
  const auto sp2 = line->find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos) return std::nullopt;
  const auto method = wire::parse_http_method(line->substr(0, sp1));
  if (!method) return std::nullopt;
  std::string_view target = line->substr(sp1 + 1, sp2 - sp1 - 1);
  if (target.empty() || line->substr(sp2 + 1) != "HTTP/1.1")
    return std::nullopt;
  wire::HttpRequest req;
  req.method = *method;
  req.target = std::string(target);
  if (!legacy_parse_headers(rest, req.headers)) return std::nullopt;
  req.body = std::string(rest);
  return req;
}

std::optional<wire::HttpResponse> legacy_parse_response(
    std::string_view bytes) {
  std::string_view rest = bytes;
  auto line = legacy_take_line(rest);
  if (!line) return std::nullopt;
  const auto sp1 = line->find(' ');
  if (sp1 == std::string_view::npos ||
      line->substr(0, sp1) != "HTTP/1.1") {
    return std::nullopt;
  }
  const auto sp2 = line->find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos) return std::nullopt;
  wire::HttpResponse resp;
  resp.status = static_cast<std::uint16_t>(
      std::atoi(std::string(line->substr(sp1 + 1, sp2 - sp1 - 1)).c_str()));
  resp.reason = std::string(line->substr(sp2 + 1));
  if (!legacy_parse_headers(rest, resp.headers)) return std::nullopt;
  resp.body = std::string(rest);
  return resp;
}

// Pre-rework URI normalization: appends into a fresh std::string per call.
std::string legacy_normalize_uri(std::string_view target) {
  if (const auto q = target.find('?'); q != std::string_view::npos)
    target = target.substr(0, q);
  std::string out;
  out.reserve(target.size());
  std::size_t pos = 0;
  while (pos <= target.size()) {
    const auto slash = target.find('/', pos);
    std::string_view seg = slash == std::string_view::npos
                               ? target.substr(pos)
                               : target.substr(pos, slash - pos);
    std::string_view stem = seg;
    std::string_view ext;
    if (const auto dot = seg.rfind('.'); dot != std::string_view::npos &&
                                         dot > 0 && seg.size() - dot <= 5) {
      stem = seg.substr(0, dot);
      ext = seg.substr(dot);
    }
    bool id_like = false;
    if (!stem.empty()) {
      bool all_digits = true;
      std::size_t hexish = 0;
      for (char c : stem) {
        const auto uc = static_cast<unsigned char>(c);
        if (!std::isdigit(uc)) all_digits = false;
        if (std::isxdigit(uc) || c == '-') ++hexish;
      }
      id_like = all_digits ||
                (stem.size() >= 8 && hexish == stem.size() &&
                 stem.find('-') != std::string_view::npos);
    }
    if (id_like) {
      out += "<ID>";
      out += ext;
    } else {
      out += seg;
    }
    if (slash == std::string_view::npos) break;
    out += '/';
    pos = slash + 1;
  }
  return out;
}

struct LegacyTap {
  // Pre-rework catalog tables: string keys, one key string built per probe.
  std::unordered_map<std::string, wire::ApiId> by_rest;
  std::unordered_map<std::string, wire::ApiId> by_rpc;
  std::unordered_map<std::uint16_t, wire::ServiceKind> service_by_port;
  std::unordered_map<std::uint32_t, wire::ApiId> conn_last_api;

  static std::string rest_key(wire::ServiceKind service,
                              wire::HttpMethod method,
                              std::string_view path) {
    std::string key;
    key += static_cast<char>('A' + static_cast<int>(service));
    key += static_cast<char>('0' + static_cast<int>(method));
    key += path;
    return key;
  }
  static std::string rpc_key(wire::ServiceKind service,
                             std::string_view method) {
    std::string key;
    key += static_cast<char>('A' + static_cast<int>(service));
    key += method;
    return key;
  }

  explicit LegacyTap(const bench::BenchEnv& env)
      : service_by_port(env.deployment.service_by_port()) {
    for (const auto& api : env.catalog.apis().all()) {
      if (api.kind == wire::ApiKind::Rest) {
        by_rest.emplace(rest_key(api.service, api.method, api.path), api.id);
      } else {
        by_rpc.emplace(rpc_key(api.service, api.rpc_method), api.id);
      }
    }
  }

  // Pre-rework case-insensitive lookup went through std::tolower; keep that
  // cost in the baseline rather than inheriting the ASCII fast path.
  static bool legacy_iequals(std::string_view a, std::string_view b) {
    return a.size() == b.size() &&
           std::equal(a.begin(), a.end(), b.begin(), [](char x, char y) {
             return std::tolower(static_cast<unsigned char>(x)) ==
                    std::tolower(static_cast<unsigned char>(y));
           });
  }
  static std::optional<std::string_view> legacy_get(
      const wire::HttpHeaders& headers, std::string_view name) {
    for (const auto& [n, v] : headers.fields) {
      if (legacy_iequals(n, name)) return std::string_view(v);
    }
    return std::nullopt;
  }

  static std::uint32_t parse_correlation(const wire::HttpHeaders& headers) {
    const auto value = legacy_get(headers, "X-Openstack-Request-Id");
    if (!value || !value->starts_with("req-")) return 0;
    std::uint32_t id = 0;
    for (char c : value->substr(4)) {
      if (c < '0' || c > '9') return 0;
      id = id * 10 + static_cast<std::uint32_t>(c - '0');
    }
    return id;
  }

  // Full pre-rework decode, producing the same wire::Event the hot path
  // produces so the two measurements cover identical work.
  std::optional<wire::Event> decode(const net::WireRecord& record) {
    auto event = record.is_amqp ? decode_amqp(record) : decode_rest(record);
    if (event) {
      event->ts = record.ts;
      event->src_node = record.src_node;
      event->dst_node = record.dst_node;
      event->src = record.src;
      event->dst = record.dst;
      event->wire_bytes = static_cast<std::uint32_t>(record.bytes.size());
      event->truth_instance = record.truth_instance;
      event->truth_template = record.truth_template;
      event->truth_noise = record.truth_noise;
      event->identifiers = record.identifiers;
    }
    return event;
  }

  std::optional<wire::Event> decode_rest(const net::WireRecord& record) {
    wire::Event ev;
    ev.kind = wire::ApiKind::Rest;
    ev.conn_id = record.conn_id;
    if (std::string_view(record.bytes).starts_with("HTTP/")) {
      auto resp = legacy_parse_response(record.bytes);
      if (!resp) return std::nullopt;
      const auto it = conn_last_api.find(record.conn_id);
      if (it == conn_last_api.end()) return std::nullopt;
      ev.dir = wire::Direction::Response;
      ev.api = it->second;
      ev.status = resp->status;
      ev.correlation_id = parse_correlation(resp->headers);
      if (wire::is_error_status(resp->status)) ev.error_text = resp->reason;
      return ev;
    }
    auto req = legacy_parse_request(record.bytes);
    if (!req) return std::nullopt;
    const auto svc = service_by_port.find(record.dst.port);
    if (svc == service_by_port.end()) return std::nullopt;
    const auto it = by_rest.find(
        rest_key(svc->second, req->method, legacy_normalize_uri(req->target)));
    if (it == by_rest.end()) return std::nullopt;
    ev.dir = wire::Direction::Request;
    ev.api = it->second;
    ev.correlation_id = parse_correlation(req->headers);
    conn_last_api[record.conn_id] = it->second;
    return ev;
  }

  std::optional<wire::Event> decode_amqp(const net::WireRecord& record) {
    auto frame = wire::parse_amqp_frame(record.bytes);
    if (!frame) return std::nullopt;
    std::string_view topic = frame->routing_key;
    if (const auto dot = topic.find('.'); dot != std::string_view::npos)
      topic = topic.substr(0, dot);
    wire::ServiceKind service = wire::ServiceKind::Unknown;
    for (int s = 0; s <= static_cast<int>(wire::ServiceKind::Unknown); ++s) {
      if (wire::to_string(static_cast<wire::ServiceKind>(s)) == topic) {
        service = static_cast<wire::ServiceKind>(s);
        break;
      }
    }
    const auto it = by_rpc.find(rpc_key(service, frame->method_name));
    if (it == by_rpc.end()) return std::nullopt;
    wire::Event ev;
    ev.kind = wire::ApiKind::Rpc;
    ev.api = it->second;
    ev.msg_id = frame->msg_id;
    ev.correlation_id = frame->correlation_id;
    if (frame->type == wire::AmqpFrameType::Publish) {
      ev.dir = wire::Direction::Request;
    } else {
      ev.dir = wire::Direction::Response;
      if (wire::rpc_payload_has_error(frame->payload)) {
        ev.status = 500;
        ev.error_text = frame->payload;
      } else {
        ev.status = wire::kStatusOk;
      }
    }
    return ev;
  }
};

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct DecodeMeasurement {
  double events_per_sec = 0.0;
  double allocs_per_event = 0.0;
};

template <typename DecodeFn>
DecodeMeasurement measure_decode(const std::vector<net::WireRecord>& pool,
                                 std::size_t passes, DecodeFn&& decode) {
  std::size_t decoded = 0;
  // Warmup: grows the arena slab list / conn map / malloc pools to their
  // high-water mark so the measured passes see the steady state.
  for (const auto& r : pool) decoded += decode(r);

  g_alloc_count.store(0, std::memory_order_relaxed);
  g_count_allocs.store(true, std::memory_order_relaxed);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t p = 0; p < passes; ++p) {
    for (const auto& r : pool) decoded += decode(r);
  }
  const double elapsed = seconds_since(t0);
  g_count_allocs.store(false, std::memory_order_relaxed);
  const auto allocs = g_alloc_count.load(std::memory_order_relaxed);

  const auto events = static_cast<double>(passes * pool.size());
  DecodeMeasurement m;
  m.events_per_sec = events / elapsed;
  m.allocs_per_event = static_cast<double>(allocs) / events;
  if (decoded == 0) m.events_per_sec = 0.0;  // guard against dead-code elim
  return m;
}

// Detector-output facts compared across sweep configurations: the pipeline
// contract says these are invariant under shard count, batching and wake
// cadence for a fixed input stream.
struct IngestStats {
  std::uint64_t events = 0;
  std::uint64_t rest_errors = 0;
  std::uint64_t rpc_errors = 0;
  std::uint64_t operational_reports = 0;
  std::uint64_t performance_reports = 0;
  std::uint64_t suppressed_triggers = 0;
  std::uint64_t latency_samples = 0;

  bool operator==(const IngestStats&) const = default;
};

struct IngestMeasurement {
  double events_per_sec = 0.0;
  IngestStats stats;
};

core::GretelConfig ingest_config(const bench::BenchEnv& env,
                                 std::size_t num_shards) {
  core::GretelConfig config;
  config.fp_max = env.training.fp_max;
  config.p_rate = 2000.0;
  config.num_shards = num_shards;
  return config;
}

IngestMeasurement measure_ingest(const bench::BenchEnv& env,
                                 const std::vector<wire::Event>& events,
                                 std::size_t num_shards, bool batched,
                                 std::size_t passes) {
  core::AnomalyDetector detector(&env.training.db, &env.catalog.apis(),
                                 ingest_config(env, num_shards), nullptr);
  // Warmup pass (thread spin-up, ring/slab growth).
  if (batched) {
    detector.on_events(events);
  } else {
    for (const auto& e : events) detector.on_event(e);
  }
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t p = 0; p < passes; ++p) {
    if (batched) {
      detector.on_events(events);
    } else {
      for (const auto& e : events) detector.on_event(e);
    }
  }
  const double elapsed = seconds_since(t0);
  detector.flush();

  IngestMeasurement m;
  m.events_per_sec = static_cast<double>(passes * events.size()) / elapsed;
  const auto& s = detector.stats();
  m.stats = {s.events,
             s.rest_errors,
             s.rpc_errors,
             s.operational_reports,
             s.performance_reports,
             s.suppressed_triggers,
             detector.latency_shards().samples()};
  return m;
}

std::vector<std::size_t> parse_shard_list(const char* arg) {
  std::vector<std::size_t> shards;
  const char* p = arg;
  while (*p) {
    char* end = nullptr;
    const auto v = std::strtoull(p, &end, 10);
    if (end == p) break;
    if (v > 0) shards.push_back(static_cast<std::size_t>(v));
    p = *end == ',' ? end + 1 : end;
  }
  return shards;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t target_events = 400'000;
  std::string out_path = "BENCH_ingest.json";
  std::string scaling_path = "BENCH_shard_scaling.json";
  std::vector<std::size_t> shard_counts = {1, 2, 4, 8};
  bool tripwire = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--events") == 0 && i + 1 < argc) {
      target_events = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shard_counts = parse_shard_list(argv[++i]);
    } else if (std::strcmp(argv[i], "--scaling-out") == 0 && i + 1 < argc) {
      scaling_path = argv[++i];
    } else if (std::strcmp(argv[i], "--tripwire") == 0) {
      tripwire = true;
    }
  }
  if (shard_counts.empty()) {
    std::fprintf(stderr, "--shards parsed to an empty list\n");
    return 1;
  }

  bench::print_header("Ingestion hot path: decode+resolve and ingest");
  auto env = bench::BenchEnv::make();

  const auto pool = build_pool(env);
  const std::size_t passes =
      std::max<std::size_t>(1, target_events / std::max<std::size_t>(
                                                   1, pool.size()));
  std::printf("record pool: %zu records, %zu passes (%zu events/measure)\n",
              pool.size(), passes, passes * pool.size());

  // --- decode+resolve: legacy vs hot path ---
  LegacyTap legacy(env);
  const auto legacy_m = measure_decode(
      pool, passes,
      [&](const net::WireRecord& r) { return legacy.decode(r) ? 1u : 0u; });

  net::CaptureTap tap(&env.catalog.apis(), env.deployment.service_by_port());
  const auto hot_m = measure_decode(pool, passes,
                                    [&](const net::WireRecord& r) {
                                      return tap.decode(r) ? 1u : 0u;
                                    });
  const double speedup = hot_m.events_per_sec / legacy_m.events_per_sec;

  std::printf("%-22s %14s %16s\n", "decode+resolve", "events/s",
              "allocs/event");
  std::printf("%-22s %14.0f %16.3f\n", "legacy (owning)",
              legacy_m.events_per_sec, legacy_m.allocs_per_event);
  std::printf("%-22s %14.0f %16.3f\n", "hotpath (arena+view)",
              hot_m.events_per_sec, hot_m.allocs_per_event);
  std::printf("speedup: %.2fx\n\n", speedup);

  // --- end-to-end ingest: the shard-scaling sweep ---
  std::vector<wire::Event> events;
  events.reserve(pool.size());
  for (const auto& r : pool) {
    if (auto e = tap.decode(r)) events.push_back(std::move(*e));
  }
  struct IngestRow {
    std::size_t shards;
    const char* mode;  // "per_event" | "batched"
    IngestMeasurement m;
  };
  std::vector<IngestRow> sweep;
  for (const auto shards : shard_counts) {
    sweep.push_back({shards, "per_event",
                     measure_ingest(env, events, shards, false, passes)});
    sweep.push_back({shards, "batched",
                     measure_ingest(env, events, shards, true, passes)});
  }

  // Determinism cross-check: every swept configuration must produce the
  // exact same detector-visible facts as the first one.  Not a benchmark —
  // a correctness gate on the pipeline contract, run on the bench traffic.
  const IngestStats& reference = sweep.front().m.stats;
  bool deterministic = true;
  for (const auto& row : sweep) {
    if (!(row.m.stats == reference)) {
      deterministic = false;
      std::fprintf(stderr,
                   "DETERMINISM VIOLATION at shards=%zu mode=%s: stats "
                   "diverge from the %zu-shard %s reference\n",
                   row.shards, row.mode, sweep.front().shards,
                   sweep.front().mode);
    }
  }

  auto find_rate = [&](std::size_t shards, const char* mode) -> double {
    for (const auto& row : sweep) {
      if (row.shards == shards && std::strcmp(row.mode, mode) == 0)
        return row.m.events_per_sec;
    }
    return 0.0;
  };
  const double base_batched = find_rate(1, "batched");

  std::printf("%-10s %-10s %14s %10s\n", "shards", "mode", "events/s",
              "vs 1/batch");
  for (const auto& row : sweep) {
    std::printf("%-10zu %-10s %14.0f %9.2fx\n", row.shards, row.mode,
                row.m.events_per_sec,
                base_batched > 0 ? row.m.events_per_sec / base_batched : 0.0);
  }
  std::printf("determinism across sweep: %s\n",
              deterministic ? "identical" : "VIOLATED");

  const auto bench_config = ingest_config(env, 1);
  bench::BenchRunMeta meta;
  meta.benchmark = "ingest_hotpath";
  meta.events_measured = passes * pool.size();
  meta.pool_records = pool.size();
  meta.ingest_batch = bench_config.ingest_batch;
  meta.drain_interval = bench_config.drain_interval();

  // --- BENCH_ingest.json (decode + the three headline ingest rows) ---
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  write_bench_meta(f, meta);
  std::fprintf(f, ",\n");
  std::fprintf(f,
               "  \"decode_resolve\": {\n"
               "    \"legacy\": {\"events_per_sec\": %.1f, "
               "\"allocs_per_event\": %.4f},\n"
               "    \"hotpath\": {\"events_per_sec\": %.1f, "
               "\"allocs_per_event\": %.4f},\n"
               "    \"speedup\": %.3f\n"
               "  },\n",
               legacy_m.events_per_sec, legacy_m.allocs_per_event,
               hot_m.events_per_sec, hot_m.allocs_per_event, speedup);
  std::fprintf(f, "  \"steady_state_allocs_per_event\": %.4f,\n",
               hot_m.allocs_per_event);
  std::fprintf(f, "  \"ingest\": [\n");
  struct Headline {
    std::size_t shards;
    const char* mode;
  };
  std::vector<Headline> headline;
  for (const auto& h : {Headline{1, "per_event"}, Headline{1, "batched"},
                        Headline{4, "batched"}}) {
    if (find_rate(h.shards, h.mode) > 0) headline.push_back(h);
  }
  for (std::size_t i = 0; i < headline.size(); ++i) {
    std::fprintf(f,
                 "    {\"shards\": %zu, \"mode\": \"%s\", "
                 "\"events_per_sec\": %.1f}%s\n",
                 headline[i].shards, headline[i].mode,
                 find_rate(headline[i].shards, headline[i].mode),
                 i + 1 < headline.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path.c_str());

  // --- BENCH_shard_scaling.json (full sweep + ratios + determinism) ---
  f = std::fopen(scaling_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", scaling_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  meta.benchmark = "shard_scaling";
  write_bench_meta(f, meta);
  std::fprintf(f, ",\n");
  std::fprintf(f, "  \"sweep\": [\n");
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const auto& row = sweep[i];
    std::fprintf(f,
                 "    {\"shards\": %zu, \"mode\": \"%s\", "
                 "\"events_per_sec\": %.1f, \"vs_1shard_batched\": %.4f}%s\n",
                 row.shards, row.mode, row.m.events_per_sec,
                 base_batched > 0 ? row.m.events_per_sec / base_batched : 0.0,
                 i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"ratios\": {");
  bool first_ratio = true;
  for (const auto shards : shard_counts) {
    if (shards == 1) continue;
    const double r = find_rate(shards, "batched");
    if (r <= 0 || base_batched <= 0) continue;
    std::fprintf(f, "%s\n    \"batched_%zu_over_1\": %.4f",
                 first_ratio ? "" : ",", shards, r / base_batched);
    first_ratio = false;
  }
  std::fprintf(f, "\n  },\n");
  std::fprintf(f,
               "  \"determinism\": {\n"
               "    \"identical_across_sweep\": %s,\n"
               "    \"events\": %llu,\n"
               "    \"operational_reports\": %llu,\n"
               "    \"performance_reports\": %llu,\n"
               "    \"rest_errors\": %llu,\n"
               "    \"rpc_errors\": %llu,\n"
               "    \"suppressed_triggers\": %llu,\n"
               "    \"latency_samples\": %llu\n"
               "  }\n",
               deterministic ? "true" : "false",
               static_cast<unsigned long long>(reference.events),
               static_cast<unsigned long long>(reference.operational_reports),
               static_cast<unsigned long long>(reference.performance_reports),
               static_cast<unsigned long long>(reference.rest_errors),
               static_cast<unsigned long long>(reference.rpc_errors),
               static_cast<unsigned long long>(reference.suppressed_triggers),
               static_cast<unsigned long long>(reference.latency_samples));
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", scaling_path.c_str());

  if (!deterministic) return 2;

  // --- regression tripwire (CI) ---
  if (tripwire) {
    const double r4 = find_rate(4, "batched");
    if (r4 <= 0 || base_batched <= 0) {
      std::fprintf(stderr,
                   "tripwire: sweep lacks 1- and 4-shard batched rows\n");
      return 2;
    }
    const double ratio = r4 / base_batched;
    // With real cores available, 4 shards must at least match 1 shard.  On
    // small hosts (CI runners, this build container) parallel speedup is
    // physically unavailable; the floor instead guards against the
    // coordination-cost collapse the seed exhibited (0.39x on one core).
    const double floor = bench::host_cpus() >= 6 ? 1.0 : 0.6;
    std::printf("tripwire: 4-shard/1-shard batched = %.2fx (floor %.2fx, "
                "%u cpus)\n",
                ratio, floor, bench::host_cpus());
    if (ratio < floor) {
      std::fprintf(stderr,
                   "tripwire FAILED: 4-shard batched ingest at %.2fx of "
                   "1-shard (floor %.2fx)\n",
                   ratio, floor);
      return 2;
    }
  }
  return 0;
}
