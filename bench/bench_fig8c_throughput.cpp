// Reproduces Fig. 8c / §7.4.1: GRETEL's steady-state throughput versus
// fault frequency, with the HANSEL baseline for comparison.
//
// A 400-concurrent-operation capture is replayed (tcpreplay analog) through
// the full analyzer pipeline — codec decode, dual buffer, error scan,
// latency pairing, and fault-triggered operation detection — with the
// number of injected faults chosen so that the stream carries one fault per
// {100, 500, 1000, 1500, 2000} messages.  The paper reports ~7.5 Mbps at
// 1/100 rising to ~77 Mbps (~50K events/s) at 1/2000; HANSEL peaks at
// ~1.6K messages/s because it stitches on every message.
#include <cstdio>
#include <thread>

#include "bench/harness.h"
#include "hansel/hansel.h"
#include "net/replay.h"
#include "stack/workflow.h"

namespace {

// Builds a capture whose fault density is ~1 per `freq` messages.
std::vector<gretel::net::WireRecord> build_capture(
    gretel::bench::BenchEnv& env, int freq, std::uint64_t seed,
    std::size_t* fault_count) {
  using namespace gretel;
  // A 400-test workload produces ~70K records; pick fault count to match
  // the requested frequency, then adjust by measuring.
  tempest::WorkloadSpec probe;
  probe.concurrent_tests = 400;
  probe.faults = 0;
  probe.window = util::SimDuration::seconds(60);
  probe.seed = seed;

  // Estimate record count with a fault-free dry run sizing pass.
  stack::WorkflowExecutor sizing(&env.deployment, &env.catalog.apis(),
                                 &env.catalog.infra(), seed);
  const auto base = sizing.execute(make_parallel_workload(env.catalog, probe)
                                       .launches);
  const int faults =
      std::max(1, static_cast<int>(base.size() / static_cast<std::size_t>(
                                                     freq)));

  tempest::WorkloadSpec spec = probe;
  spec.faults = faults;
  *fault_count = static_cast<std::size_t>(faults);
  stack::WorkflowExecutor executor(&env.deployment, &env.catalog.apis(),
                                   &env.catalog.infra(), seed + 1);
  return executor.execute(make_parallel_workload(env.catalog, spec).launches);
}

}  // namespace

int main() {
  using namespace gretel;

  bench::print_header("Fig. 8c: throughput vs fault frequency");
  auto env = bench::BenchEnv::make();

  std::printf("%-14s %-10s %-14s %-12s %-14s %-14s\n", "fault freq",
              "faults", "events", "reports", "events/s", "Mbps");
  for (int freq : {100, 500, 1000, 1500, 2000}) {
    std::size_t fault_count = 0;
    const auto records = build_capture(env, freq,
                                       static_cast<std::uint64_t>(freq),
                                       &fault_count);

    auto options = env.analyzer_options(
        static_cast<double>(records.size()) /
        (records.back().ts - records.front().ts).to_seconds());
    core::Analyzer analyzer(&env.training.db, &env.catalog.apis(),
                            &env.deployment, options);

    const auto report = net::ReplayEngine::replay(
        records, [&](const net::WireRecord& r) { analyzer.on_wire(r); });
    analyzer.finish();

    std::printf("1/%-12d %-10zu %-14llu %-12llu %-14.0f %-14.2f\n", freq,
                fault_count,
                static_cast<unsigned long long>(report.records),
                static_cast<unsigned long long>(
                    analyzer.detector_stats().operational_reports),
                report.events_per_second(), report.mbps());
  }

  // HANSEL baseline on the 1/2000 capture: per-message stitching.
  {
    std::size_t fault_count = 0;
    const auto records = build_capture(env, 2000, 42, &fault_count);
    net::CaptureTap tap(&env.catalog.apis(),
                        env.deployment.service_by_port());
    hansel::Hansel baseline;
    const auto report = net::ReplayEngine::replay(
        records, [&](const net::WireRecord& r) {
          // HANSEL decodes the message *and* analyzes the payload for
          // identifiers on every message (§9.2).
          if (auto ev = tap.decode(r)) baseline.on_message(*ev, r.bytes);
        });
    baseline.flush();
    std::printf("%-14s %-10zu %-14llu %-12zu %-14.0f %-14.2f\n",
                "HANSEL 1/2000", fault_count,
                static_cast<unsigned long long>(report.records),
                baseline.chains().size(), report.events_per_second(),
                report.mbps());
  }

  // Sharded pipeline sweep: the same 1/1000 capture replayed through the
  // concurrent analyzer at increasing shard counts.  num_shards = 1 is the
  // serial reference; reports are identical at every point (see
  // docs/ARCHITECTURE.md "Determinism"), only throughput moves.  Scaling
  // requires real cores — on a single-CPU host the sweep degenerates to
  // ~1x and mostly measures hand-off overhead.
  {
    std::printf("\nsharded pipeline sweep (1/1000 capture, %u hardware "
                "threads)\n",
                std::thread::hardware_concurrency());
    std::size_t fault_count = 0;
    const auto records = build_capture(env, 1000, 1000, &fault_count);
    const auto base_options = env.analyzer_options(
        static_cast<double>(records.size()) /
        (records.back().ts - records.front().ts).to_seconds());

    double serial_eps = 0.0;
    std::printf("%-10s %-10s %-14s %-12s %-14s %-10s\n", "shards",
                "workers", "events", "reports", "events/s", "speedup");
    for (std::size_t shards : {1u, 2u, 4u, 8u}) {
      auto options = base_options;
      options.config.num_shards = shards;
      options.config.num_match_workers = shards > 1 ? shards : 0;
      core::Analyzer analyzer(&env.training.db, &env.catalog.apis(),
                              &env.deployment, options);
      const auto report = net::ReplayEngine::replay(
          records, [&](const net::WireRecord& r) { analyzer.on_wire(r); });
      analyzer.finish();
      const double eps = report.events_per_second();
      if (shards == 1) serial_eps = eps;
      std::printf("%-10zu %-10zu %-14llu %-12llu %-14.0f %-10.2f\n", shards,
                  options.config.num_match_workers,
                  static_cast<unsigned long long>(report.records),
                  static_cast<unsigned long long>(
                      analyzer.detector_stats().operational_reports),
                  eps, serial_eps > 0 ? eps / serial_eps : 0.0);
    }
  }

  std::printf("\npaper: ~7.5 Mbps at 1/100 -> near line rate (~77 Mbps, "
              "~50K events/s) at 1/1000+; HANSEL peaks at ~1.6K msgs/s and "
              "reports with ~30 s latency\n");
  return 0;
}
