// Match/scan kernel microbenchmarks: the SIMD hot loops of the analysis
// path against their scalar reference twins, measured in one process via
// the simd::set_force_scalar escape hatch (so both families run the exact
// same code paths around the kernel).
//
// Measured claims, recorded in BENCH_match_kernels.json:
//  1. subsequence-match (Alg. 2 inner loop) — SIMD skip-ahead vs scalar
//     two-pointer walk over an α-sized snapshot.
//  2. error-scan — collecting error positions from a 2α window's flag
//     column via find_first_set_u8 vs the per-element scalar walk.
//  3. find-last / truncation — one truncate_at_last over an α snapshot.
//  4. regex backend compile cache — cached (steady-state) vs cold
//     (compile-per-call) pattern matching.
//  5. level-shift refresh — nth_element in-place median/MAD vs the
//     sort-based copies, on a baseline window of 64 samples.
// Each section also cross-checks that the two kernel families return
// identical results on the bench inputs (a cheap determinism anchor; the
// exhaustive contract lives in tests/util/simd_test.cpp).
//
// Usage: bench_match_kernels [--out PATH] [--iters N] [--tripwire]
//   --tripwire  exit non-zero unless subsequence-match and error-scan hit
//               >= 2x over scalar — skipped when the binary's kernel family
//               is already scalar (nothing to compare).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "gretel/matcher.h"
#include "util/rng.h"
#include "util/simd.h"
#include "util/stats.h"

namespace {

using namespace gretel;
using wire::ApiId;

// Sink defeating dead-code elimination without fencing the pipeline.
volatile std::uint64_t g_sink = 0;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// Best-of-5 timing: ns per call of `fn` over `iters` calls.  Best-of (not
// mean) because the container shares one core — the fastest repetition is
// the least-perturbed one.
template <typename Fn>
double measure_ns(std::size_t iters, Fn&& fn) {
  double best = 1e300;
  for (int rep = 0; rep < 5; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < iters; ++i) fn();
    best = std::min(best, seconds_since(t0));
  }
  return best * 1e9 / static_cast<double>(iters);
}

// α-sized snapshot over the full Tempest-scale alphabet with `nlit`
// literals planted in order — the Alg. 2 shape.
struct MatchWorkload {
  wire::ApiCatalog catalog;
  std::vector<ApiId> literals;
  std::vector<ApiId> snapshot;

  MatchWorkload(std::size_t nlit, std::size_t nsnap, std::uint64_t seed) {
    for (int i = 0; i < 643; ++i) {
      catalog.add_rest(wire::ServiceKind::Nova, wire::HttpMethod::Post,
                       "/api/" + std::to_string(i));
    }
    util::Rng rng(seed);
    for (std::size_t i = 0; i < nsnap; ++i) {
      snapshot.emplace_back(static_cast<std::uint16_t>(rng.next_below(643)));
    }
    auto positions = rng.sample_indices(nsnap, nlit);
    for (auto pos : positions) literals.push_back(snapshot[pos]);
  }
};

struct Pair {
  double simd_ns = 0.0;
  double scalar_ns = 0.0;
  double speedup() const {
    return simd_ns > 0.0 ? scalar_ns / simd_ns : 0.0;
  }
};

// Times `fn` under the compiled kernel family and again with every kernel
// forced onto its scalar reference.
template <typename Fn>
Pair ab_measure(std::size_t iters, Fn&& fn) {
  Pair p;
  simd::set_force_scalar(false);
  p.simd_ns = measure_ns(iters, fn);
  simd::set_force_scalar(true);
  p.scalar_ns = measure_ns(iters, fn);
  simd::set_force_scalar(false);
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_match_kernels.json";
  std::size_t iters = 20'000;
  bool tripwire = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--iters") == 0 && i + 1 < argc) {
      iters = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--tripwire") == 0) {
      tripwire = true;
    }
  }

  bench::print_header("Match/scan kernels: SIMD vs scalar reference");
  std::printf("kernel family compiled into this binary: %s\n\n",
              simd::compiled_kernel());

  bool identical = true;

  // --- 1. subsequence match (Alg. 2 inner loop), α = 768, 16 literals ---
  const MatchWorkload w(16, 768, 0x5EED);
  const core::Matcher matcher(&w.catalog,
                              {true, core::MatchBackend::SymbolSubsequence});
  {
    simd::set_force_scalar(false);
    const bool a = matcher.matches(w.literals, w.snapshot);
    simd::set_force_scalar(true);
    const bool b = matcher.matches(w.literals, w.snapshot);
    simd::set_force_scalar(false);
    identical = identical && a == b && a;
  }
  const auto subsequence = ab_measure(iters, [&] {
    g_sink = g_sink + (matcher.matches(w.literals, w.snapshot) ? 1 : 0);
  });

  // --- 2. error scan over a 2α window flag column, ~1% error density ---
  std::vector<std::uint8_t> err(1536, 0);
  {
    util::Rng rng(0xE44);
    for (auto& f : err) f = rng.next_below(100) == 0 ? 1 : 0;
  }
  const auto scan_errors = [&] {
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < err.size(); ++i) {
      const auto hit = simd::find_first_set_u8(err.data() + i,
                                               err.size() - i);
      if (hit == simd::npos) break;
      i += hit;
      acc += i;
    }
    return acc;
  };
  {
    simd::set_force_scalar(false);
    const auto a = scan_errors();
    simd::set_force_scalar(true);
    const auto b = scan_errors();
    simd::set_force_scalar(false);
    identical = identical && a == b;
  }
  const auto error_scan =
      ab_measure(iters, [&] { g_sink = g_sink + scan_errors(); });

  // --- 3. truncation: find_last_eq over an α snapshot ---
  const auto needle = w.snapshot[w.snapshot.size() / 3];
  {
    simd::set_force_scalar(false);
    const auto a = core::Matcher::truncate_at_last(w.snapshot, needle).size();
    simd::set_force_scalar(true);
    const auto b = core::Matcher::truncate_at_last(w.snapshot, needle).size();
    simd::set_force_scalar(false);
    identical = identical && a == b;
  }
  const auto truncate = ab_measure(iters, [&] {
    g_sink = g_sink + (core::Matcher::truncate_at_last(w.snapshot, needle).size());
  });

  // --- 4. regex backend: compile cache (cached vs compile-per-call) ---
  const MatchWorkload wre(8, 256, 0x4E6E);
  const core::Matcher re_cached(&wre.catalog,
                                {true, core::MatchBackend::StdRegex});
  const std::size_t re_iters = std::max<std::size_t>(1, iters / 50);
  const double regex_cached_ns = measure_ns(re_iters, [&] {
    g_sink = g_sink + (re_cached.matches(wre.literals, wre.snapshot) ? 1 : 0);
  });
  const double regex_cold_ns = measure_ns(re_iters, [&] {
    // A fresh Matcher per call: empty cache, so the pattern recompiles —
    // the pre-cache behaviour.
    const core::Matcher cold(&wre.catalog,
                             {true, core::MatchBackend::StdRegex});
    g_sink = g_sink + (cold.matches(wre.literals, wre.snapshot) ? 1 : 0);
  });
  const double regex_speedup =
      regex_cached_ns > 0.0 ? regex_cold_ns / regex_cached_ns : 0.0;

  // --- 5. level-shift refresh: in-place vs sort-based estimators ---
  std::vector<double> baseline(64);
  {
    util::Rng rng(0x1EE7);
    for (auto& x : baseline) x = 10.0 + rng.next_double();
  }
  std::vector<double> scratch;
  {
    scratch = baseline;
    const double a = util::median(baseline) + util::mad_sigma(baseline);
    const double b = util::median_inplace(scratch) +
                     [&] {
                       scratch = baseline;
                       return util::mad_sigma_inplace(scratch);
                     }();
    identical = identical && a == b;
  }
  const std::size_t ls_iters = std::max<std::size_t>(1, iters / 4);
  const double refresh_sorted_ns = measure_ns(ls_iters, [&] {
    std::vector<double> v(baseline.begin(), baseline.end());
    const double med = util::median(v);
    const double sig = util::mad_sigma(v);
    g_sink = g_sink + (static_cast<std::uint64_t>(med + sig));
  });
  const double refresh_inplace_ns = measure_ns(ls_iters, [&] {
    scratch.assign(baseline.begin(), baseline.end());
    const double med = util::median_inplace(scratch);
    scratch.assign(baseline.begin(), baseline.end());
    const double sig = util::mad_sigma_inplace(scratch);
    g_sink = g_sink + (static_cast<std::uint64_t>(med + sig));
  });
  const double refresh_speedup =
      refresh_inplace_ns > 0.0 ? refresh_sorted_ns / refresh_inplace_ns : 0.0;

  std::printf("%-28s %12s %12s %9s\n", "microbench", "simd ns/op",
              "scalar ns/op", "speedup");
  std::printf("%-28s %12.1f %12.1f %8.2fx\n",
              "subsequence_match(16,768)", subsequence.simd_ns,
              subsequence.scalar_ns, subsequence.speedup());
  std::printf("%-28s %12.1f %12.1f %8.2fx\n", "error_scan(1536,1%)",
              error_scan.simd_ns, error_scan.scalar_ns, error_scan.speedup());
  std::printf("%-28s %12.1f %12.1f %8.2fx\n", "truncate_at_last(768)",
              truncate.simd_ns, truncate.scalar_ns, truncate.speedup());
  std::printf("%-28s %12.1f %12.1f %8.2fx  (cached vs cold)\n",
              "regex_compile_cache(8,256)", regex_cached_ns, regex_cold_ns,
              regex_speedup);
  std::printf("%-28s %12.1f %12.1f %8.2fx  (inplace vs sorted)\n",
              "levelshift_refresh(64)", refresh_inplace_ns, refresh_sorted_ns,
              refresh_speedup);
  std::printf("cross-check simd == scalar results: %s\n\n",
              identical ? "identical" : "DIVERGED");

  bench::BenchRunMeta meta;
  meta.benchmark = "match_kernels";
  meta.events_measured = iters;

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  write_bench_meta(f, meta);
  std::fprintf(f, ",\n");
  std::fprintf(f, "  \"simd\": {\"compiled_kernel\": \"%s\"},\n",
               simd::compiled_kernel());
  std::fprintf(f, "  \"results_identical\": %s,\n",
               identical ? "true" : "false");
  std::fprintf(f, "  \"kernels\": [\n");
  struct Row {
    const char* name;
    double fast_ns;
    double slow_ns;
    double speedup;
    const char* baseline;
  };
  const Row rows[] = {
      {"subsequence_match", subsequence.simd_ns, subsequence.scalar_ns,
       subsequence.speedup(), "scalar"},
      {"error_scan", error_scan.simd_ns, error_scan.scalar_ns,
       error_scan.speedup(), "scalar"},
      {"truncate_at_last", truncate.simd_ns, truncate.scalar_ns,
       truncate.speedup(), "scalar"},
      {"regex_compile_cache", regex_cached_ns, regex_cold_ns, regex_speedup,
       "cold_compile"},
      {"levelshift_refresh", refresh_inplace_ns, refresh_sorted_ns,
       refresh_speedup, "sort_copy"},
  };
  constexpr std::size_t kRows = sizeof(rows) / sizeof(rows[0]);
  for (std::size_t i = 0; i < kRows; ++i) {
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"ns_per_op\": %.1f, "
                 "\"baseline\": \"%s\", \"baseline_ns_per_op\": %.1f, "
                 "\"speedup\": %.3f}%s\n",
                 rows[i].name, rows[i].fast_ns, rows[i].baseline,
                 rows[i].slow_ns, rows[i].speedup, i + 1 < kRows ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());

  if (!identical) {
    std::fprintf(stderr, "kernel families DIVERGED on bench inputs\n");
    return 2;
  }

  if (tripwire) {
    if (std::strcmp(simd::compiled_kernel(), "scalar") == 0) {
      std::printf("tripwire: scalar-only build, speedup floor skipped\n");
      return 0;
    }
    const double floor = 2.0;
    std::printf("tripwire: subsequence %.2fx, error_scan %.2fx "
                "(floor %.2fx)\n",
                subsequence.speedup(), error_scan.speedup(), floor);
    if (subsequence.speedup() < floor || error_scan.speedup() < floor) {
      std::fprintf(stderr,
                   "tripwire FAILED: SIMD kernels below %.1fx over scalar "
                   "(subsequence %.2fx, error_scan %.2fx)\n",
                   floor, subsequence.speedup(), error_scan.speedup());
      return 2;
    }
  }
  return 0;
}
