// Reproduces Fig. 8b / §7.3 item 4: performance faults for Glance's image
// metadata GET under injected latency.
//
// 200 Tempest operations run concurrently for ~20 minutes; tc-style latency
// of 50 ms is injected on all communication to/from the Glance server for
// 10 minutes starting at the 5-minute mark.  The paper observes 18 LS
// alarms confined to the injection window, with the detector adapting
// rather than alarming continuously.
#include <cstdio>

#include "bench/harness.h"
#include "stack/workflow.h"

int main() {
  using namespace gretel;
  using util::SimDuration;
  using util::SimTime;

  bench::print_header("Fig. 8b: performance faults under injected latency");
  auto env = bench::BenchEnv::make();

  tempest::WorkloadSpec spec;
  spec.concurrent_tests = 200;
  spec.faults = 0;
  spec.window = SimDuration::minutes(20);
  spec.seed = 800;
  auto workload = make_parallel_workload(env.catalog, spec);

  const auto inject_start = SimTime::epoch() + SimDuration::minutes(5);
  const auto inject_end = inject_start + SimDuration::minutes(10);
  env.deployment.inject_link_latency(wire::ServiceKind::Glance,
                                     inject_start, inject_end,
                                     SimDuration::millis(50));

  stack::WorkflowExecutor executor(&env.deployment, &env.catalog.apis(),
                                   &env.catalog.infra(), 81);
  const auto records = executor.execute(workload.launches);

  auto options = env.analyzer_options(
      static_cast<double>(records.size()) /
      (records.back().ts - records.front().ts).to_seconds());
  core::Analyzer analyzer(&env.training.db, &env.catalog.apis(),
                          &env.deployment, options);
  for (const auto& r : records) analyzer.on_wire(r);
  analyzer.finish();

  int alarms_in_window = 0;
  int alarms_outside = 0;
  int glance_alarms = 0;
  for (const auto& d : analyzer.diagnoses()) {
    if (d.fault.kind != core::FaultKind::Performance) continue;
    const auto t = d.fault.latency ? d.fault.latency->when
                                   : d.fault.detected_at;
    const bool inside = t >= inject_start && t < inject_end;
    inside ? ++alarms_in_window : ++alarms_outside;
    const auto& desc = env.catalog.apis().get(d.fault.offending_api);
    if (desc.service == wire::ServiceKind::Glance) {
      ++glance_alarms;
      if (d.fault.latency) {
        std::printf("alarm: %-40s t=%7.1fs  %6.1f -> %6.1f ms  (%s)\n",
                    desc.display_name().c_str(),
                    d.fault.latency->alarm.t_seconds,
                    d.fault.latency->alarm.baseline,
                    d.fault.latency->alarm.baseline +
                        (d.fault.latency->alarm.direction ==
                                 detect::ShiftDirection::Up
                             ? d.fault.latency->alarm.magnitude
                             : -d.fault.latency->alarm.magnitude),
                    inside ? "inside injection window" : "OUTSIDE");
      }
    }
  }

  std::printf("\nperformance alarms inside the injection window: %d\n",
              alarms_in_window);
  std::printf("performance alarms outside the window: %d\n", alarms_outside);
  std::printf("alarms on Glance APIs: %d\n", glance_alarms);
  std::printf("\npaper: 18 alarms during the 10-minute injection, "
              "corroborated by level shifts; LS adapts and stays quiet on "
              "smaller variation\n");
  return 0;
}
