# Empty dependencies file for gretel_capture.
# This may be replaced when dependencies are built.
