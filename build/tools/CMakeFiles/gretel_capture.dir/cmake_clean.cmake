file(REMOVE_RECURSE
  "CMakeFiles/gretel_capture.dir/gretel_capture.cpp.o"
  "CMakeFiles/gretel_capture.dir/gretel_capture.cpp.o.d"
  "gretel_capture"
  "gretel_capture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gretel_capture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
