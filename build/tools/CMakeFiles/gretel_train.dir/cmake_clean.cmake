file(REMOVE_RECURSE
  "CMakeFiles/gretel_train.dir/gretel_train.cpp.o"
  "CMakeFiles/gretel_train.dir/gretel_train.cpp.o.d"
  "gretel_train"
  "gretel_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gretel_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
