# Empty compiler generated dependencies file for gretel_train.
# This may be replaced when dependencies are built.
