file(REMOVE_RECURSE
  "CMakeFiles/gretel_analyze.dir/gretel_analyze.cpp.o"
  "CMakeFiles/gretel_analyze.dir/gretel_analyze.cpp.o.d"
  "gretel_analyze"
  "gretel_analyze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gretel_analyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
