# Empty compiler generated dependencies file for gretel_analyze.
# This may be replaced when dependencies are built.
