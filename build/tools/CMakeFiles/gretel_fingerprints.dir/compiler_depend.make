# Empty compiler generated dependencies file for gretel_fingerprints.
# This may be replaced when dependencies are built.
