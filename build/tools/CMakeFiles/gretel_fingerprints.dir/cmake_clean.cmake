file(REMOVE_RECURSE
  "CMakeFiles/gretel_fingerprints.dir/gretel_fingerprints.cpp.o"
  "CMakeFiles/gretel_fingerprints.dir/gretel_fingerprints.cpp.o.d"
  "gretel_fingerprints"
  "gretel_fingerprints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gretel_fingerprints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
