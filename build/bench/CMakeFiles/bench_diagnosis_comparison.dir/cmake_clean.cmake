file(REMOVE_RECURSE
  "CMakeFiles/bench_diagnosis_comparison.dir/bench_diagnosis_comparison.cpp.o"
  "CMakeFiles/bench_diagnosis_comparison.dir/bench_diagnosis_comparison.cpp.o.d"
  "bench_diagnosis_comparison"
  "bench_diagnosis_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_diagnosis_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
