# Empty compiler generated dependencies file for bench_diagnosis_comparison.
# This may be replaced when dependencies are built.
