# Empty compiler generated dependencies file for bench_fig8a_identical_faults.
# This may be replaced when dependencies are built.
