# Empty compiler generated dependencies file for bench_fig8b_perf_faults.
# This may be replaced when dependencies are built.
