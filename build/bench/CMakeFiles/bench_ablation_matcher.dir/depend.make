# Empty dependencies file for bench_ablation_matcher.
# This may be replaced when dependencies are built.
