file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_matcher.dir/bench_ablation_matcher.cpp.o"
  "CMakeFiles/bench_ablation_matcher.dir/bench_ablation_matcher.cpp.o.d"
  "bench_ablation_matcher"
  "bench_ablation_matcher.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_matcher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
