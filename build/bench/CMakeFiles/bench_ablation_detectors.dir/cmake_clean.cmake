file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_detectors.dir/bench_ablation_detectors.cpp.o"
  "CMakeFiles/bench_ablation_detectors.dir/bench_ablation_detectors.cpp.o.d"
  "bench_ablation_detectors"
  "bench_ablation_detectors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_detectors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
