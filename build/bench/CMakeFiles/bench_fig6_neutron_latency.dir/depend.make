# Empty dependencies file for bench_fig6_neutron_latency.
# This may be replaced when dependencies are built.
