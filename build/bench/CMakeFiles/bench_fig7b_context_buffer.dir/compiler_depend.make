# Empty compiler generated dependencies file for bench_fig7b_context_buffer.
# This may be replaced when dependencies are built.
