file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7c_rpc_pruning.dir/bench_fig7c_rpc_pruning.cpp.o"
  "CMakeFiles/bench_fig7c_rpc_pruning.dir/bench_fig7c_rpc_pruning.cpp.o.d"
  "bench_fig7c_rpc_pruning"
  "bench_fig7c_rpc_pruning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7c_rpc_pruning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
