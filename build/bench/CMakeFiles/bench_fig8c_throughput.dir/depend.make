# Empty dependencies file for bench_fig8c_throughput.
# This may be replaced when dependencies are built.
