file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7a_precision.dir/bench_fig7a_precision.cpp.o"
  "CMakeFiles/bench_fig7a_precision.dir/bench_fig7a_precision.cpp.o.d"
  "bench_fig7a_precision"
  "bench_fig7a_precision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7a_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
