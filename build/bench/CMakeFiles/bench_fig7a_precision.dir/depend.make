# Empty dependencies file for bench_fig7a_precision.
# This may be replaced when dependencies are built.
