# Empty dependencies file for enhancements.
# This may be replaced when dependencies are built.
