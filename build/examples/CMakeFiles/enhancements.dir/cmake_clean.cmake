file(REMOVE_RECURSE
  "CMakeFiles/enhancements.dir/enhancements.cpp.o"
  "CMakeFiles/enhancements.dir/enhancements.cpp.o.d"
  "enhancements"
  "enhancements.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enhancements.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
