# Empty dependencies file for parallel_operations.
# This may be replaced when dependencies are built.
