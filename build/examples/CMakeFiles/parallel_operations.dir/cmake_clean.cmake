file(REMOVE_RECURSE
  "CMakeFiles/parallel_operations.dir/parallel_operations.cpp.o"
  "CMakeFiles/parallel_operations.dir/parallel_operations.cpp.o.d"
  "parallel_operations"
  "parallel_operations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_operations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
