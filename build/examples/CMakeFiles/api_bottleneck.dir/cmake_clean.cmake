file(REMOVE_RECURSE
  "CMakeFiles/api_bottleneck.dir/api_bottleneck.cpp.o"
  "CMakeFiles/api_bottleneck.dir/api_bottleneck.cpp.o.d"
  "api_bottleneck"
  "api_bottleneck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/api_bottleneck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
