# Empty compiler generated dependencies file for api_bottleneck.
# This may be replaced when dependencies are built.
