file(REMOVE_RECURSE
  "CMakeFiles/image_upload_quota.dir/image_upload_quota.cpp.o"
  "CMakeFiles/image_upload_quota.dir/image_upload_quota.cpp.o.d"
  "image_upload_quota"
  "image_upload_quota.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/image_upload_quota.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
