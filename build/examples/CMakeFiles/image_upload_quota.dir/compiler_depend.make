# Empty compiler generated dependencies file for image_upload_quota.
# This may be replaced when dependencies are built.
