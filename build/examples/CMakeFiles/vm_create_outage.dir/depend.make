# Empty dependencies file for vm_create_outage.
# This may be replaced when dependencies are built.
