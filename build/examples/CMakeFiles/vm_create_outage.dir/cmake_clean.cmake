file(REMOVE_RECURSE
  "CMakeFiles/vm_create_outage.dir/vm_create_outage.cpp.o"
  "CMakeFiles/vm_create_outage.dir/vm_create_outage.cpp.o.d"
  "vm_create_outage"
  "vm_create_outage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_create_outage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
