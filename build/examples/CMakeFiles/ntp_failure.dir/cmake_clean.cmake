file(REMOVE_RECURSE
  "CMakeFiles/ntp_failure.dir/ntp_failure.cpp.o"
  "CMakeFiles/ntp_failure.dir/ntp_failure.cpp.o.d"
  "ntp_failure"
  "ntp_failure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntp_failure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
