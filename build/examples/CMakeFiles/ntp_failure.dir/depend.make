# Empty dependencies file for ntp_failure.
# This may be replaced when dependencies are built.
