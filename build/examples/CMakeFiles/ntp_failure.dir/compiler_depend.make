# Empty compiler generated dependencies file for ntp_failure.
# This may be replaced when dependencies are built.
