
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/detect/ewma.cpp" "src/detect/CMakeFiles/gretel_detect.dir/ewma.cpp.o" "gcc" "src/detect/CMakeFiles/gretel_detect.dir/ewma.cpp.o.d"
  "/root/repo/src/detect/latency_tracker.cpp" "src/detect/CMakeFiles/gretel_detect.dir/latency_tracker.cpp.o" "gcc" "src/detect/CMakeFiles/gretel_detect.dir/latency_tracker.cpp.o.d"
  "/root/repo/src/detect/level_shift.cpp" "src/detect/CMakeFiles/gretel_detect.dir/level_shift.cpp.o" "gcc" "src/detect/CMakeFiles/gretel_detect.dir/level_shift.cpp.o.d"
  "/root/repo/src/detect/series_analysis.cpp" "src/detect/CMakeFiles/gretel_detect.dir/series_analysis.cpp.o" "gcc" "src/detect/CMakeFiles/gretel_detect.dir/series_analysis.cpp.o.d"
  "/root/repo/src/detect/zscore.cpp" "src/detect/CMakeFiles/gretel_detect.dir/zscore.cpp.o" "gcc" "src/detect/CMakeFiles/gretel_detect.dir/zscore.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/gretel_util.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/gretel_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/gretel_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
