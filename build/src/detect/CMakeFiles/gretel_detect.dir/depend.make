# Empty dependencies file for gretel_detect.
# This may be replaced when dependencies are built.
