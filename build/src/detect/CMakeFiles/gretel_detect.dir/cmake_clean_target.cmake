file(REMOVE_RECURSE
  "libgretel_detect.a"
)
