file(REMOVE_RECURSE
  "CMakeFiles/gretel_detect.dir/ewma.cpp.o"
  "CMakeFiles/gretel_detect.dir/ewma.cpp.o.d"
  "CMakeFiles/gretel_detect.dir/latency_tracker.cpp.o"
  "CMakeFiles/gretel_detect.dir/latency_tracker.cpp.o.d"
  "CMakeFiles/gretel_detect.dir/level_shift.cpp.o"
  "CMakeFiles/gretel_detect.dir/level_shift.cpp.o.d"
  "CMakeFiles/gretel_detect.dir/series_analysis.cpp.o"
  "CMakeFiles/gretel_detect.dir/series_analysis.cpp.o.d"
  "CMakeFiles/gretel_detect.dir/zscore.cpp.o"
  "CMakeFiles/gretel_detect.dir/zscore.cpp.o.d"
  "libgretel_detect.a"
  "libgretel_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gretel_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
