file(REMOVE_RECURSE
  "libgretel_wire.a"
)
