file(REMOVE_RECURSE
  "CMakeFiles/gretel_wire.dir/amqp_codec.cpp.o"
  "CMakeFiles/gretel_wire.dir/amqp_codec.cpp.o.d"
  "CMakeFiles/gretel_wire.dir/api.cpp.o"
  "CMakeFiles/gretel_wire.dir/api.cpp.o.d"
  "CMakeFiles/gretel_wire.dir/http_codec.cpp.o"
  "CMakeFiles/gretel_wire.dir/http_codec.cpp.o.d"
  "libgretel_wire.a"
  "libgretel_wire.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gretel_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
