
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wire/amqp_codec.cpp" "src/wire/CMakeFiles/gretel_wire.dir/amqp_codec.cpp.o" "gcc" "src/wire/CMakeFiles/gretel_wire.dir/amqp_codec.cpp.o.d"
  "/root/repo/src/wire/api.cpp" "src/wire/CMakeFiles/gretel_wire.dir/api.cpp.o" "gcc" "src/wire/CMakeFiles/gretel_wire.dir/api.cpp.o.d"
  "/root/repo/src/wire/http_codec.cpp" "src/wire/CMakeFiles/gretel_wire.dir/http_codec.cpp.o" "gcc" "src/wire/CMakeFiles/gretel_wire.dir/http_codec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/gretel_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
