# Empty dependencies file for gretel_wire.
# This may be replaced when dependencies are built.
