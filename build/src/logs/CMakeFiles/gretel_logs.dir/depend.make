# Empty dependencies file for gretel_logs.
# This may be replaced when dependencies are built.
