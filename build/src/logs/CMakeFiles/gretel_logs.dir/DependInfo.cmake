
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/logs/log_analysis.cpp" "src/logs/CMakeFiles/gretel_logs.dir/log_analysis.cpp.o" "gcc" "src/logs/CMakeFiles/gretel_logs.dir/log_analysis.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stack/CMakeFiles/gretel_stack.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/gretel_net.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/gretel_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gretel_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
