file(REMOVE_RECURSE
  "libgretel_logs.a"
)
