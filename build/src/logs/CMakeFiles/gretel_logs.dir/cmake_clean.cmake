file(REMOVE_RECURSE
  "CMakeFiles/gretel_logs.dir/log_analysis.cpp.o"
  "CMakeFiles/gretel_logs.dir/log_analysis.cpp.o.d"
  "libgretel_logs.a"
  "libgretel_logs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gretel_logs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
