file(REMOVE_RECURSE
  "libgretel_hansel.a"
)
