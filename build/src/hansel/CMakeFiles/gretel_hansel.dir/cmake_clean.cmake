file(REMOVE_RECURSE
  "CMakeFiles/gretel_hansel.dir/hansel.cpp.o"
  "CMakeFiles/gretel_hansel.dir/hansel.cpp.o.d"
  "libgretel_hansel.a"
  "libgretel_hansel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gretel_hansel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
