# Empty compiler generated dependencies file for gretel_hansel.
# This may be replaced when dependencies are built.
