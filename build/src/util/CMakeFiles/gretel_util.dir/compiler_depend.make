# Empty compiler generated dependencies file for gretel_util.
# This may be replaced when dependencies are built.
