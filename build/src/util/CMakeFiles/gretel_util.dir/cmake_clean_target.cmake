file(REMOVE_RECURSE
  "libgretel_util.a"
)
