file(REMOVE_RECURSE
  "CMakeFiles/gretel_util.dir/logging.cpp.o"
  "CMakeFiles/gretel_util.dir/logging.cpp.o.d"
  "CMakeFiles/gretel_util.dir/rng.cpp.o"
  "CMakeFiles/gretel_util.dir/rng.cpp.o.d"
  "CMakeFiles/gretel_util.dir/stats.cpp.o"
  "CMakeFiles/gretel_util.dir/stats.cpp.o.d"
  "libgretel_util.a"
  "libgretel_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gretel_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
