# Empty compiler generated dependencies file for gretel_core.
# This may be replaced when dependencies are built.
