file(REMOVE_RECURSE
  "CMakeFiles/gretel_core.dir/analyzer.cpp.o"
  "CMakeFiles/gretel_core.dir/analyzer.cpp.o.d"
  "CMakeFiles/gretel_core.dir/anomaly_detector.cpp.o"
  "CMakeFiles/gretel_core.dir/anomaly_detector.cpp.o.d"
  "CMakeFiles/gretel_core.dir/db_io.cpp.o"
  "CMakeFiles/gretel_core.dir/db_io.cpp.o.d"
  "CMakeFiles/gretel_core.dir/fingerprint.cpp.o"
  "CMakeFiles/gretel_core.dir/fingerprint.cpp.o.d"
  "CMakeFiles/gretel_core.dir/fingerprint_db.cpp.o"
  "CMakeFiles/gretel_core.dir/fingerprint_db.cpp.o.d"
  "CMakeFiles/gretel_core.dir/json_export.cpp.o"
  "CMakeFiles/gretel_core.dir/json_export.cpp.o.d"
  "CMakeFiles/gretel_core.dir/lcs.cpp.o"
  "CMakeFiles/gretel_core.dir/lcs.cpp.o.d"
  "CMakeFiles/gretel_core.dir/matcher.cpp.o"
  "CMakeFiles/gretel_core.dir/matcher.cpp.o.d"
  "CMakeFiles/gretel_core.dir/noise_filter.cpp.o"
  "CMakeFiles/gretel_core.dir/noise_filter.cpp.o.d"
  "CMakeFiles/gretel_core.dir/op_detector.cpp.o"
  "CMakeFiles/gretel_core.dir/op_detector.cpp.o.d"
  "CMakeFiles/gretel_core.dir/root_cause.cpp.o"
  "CMakeFiles/gretel_core.dir/root_cause.cpp.o.d"
  "CMakeFiles/gretel_core.dir/symbols.cpp.o"
  "CMakeFiles/gretel_core.dir/symbols.cpp.o.d"
  "CMakeFiles/gretel_core.dir/training.cpp.o"
  "CMakeFiles/gretel_core.dir/training.cpp.o.d"
  "libgretel_core.a"
  "libgretel_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gretel_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
