
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gretel/analyzer.cpp" "src/gretel/CMakeFiles/gretel_core.dir/analyzer.cpp.o" "gcc" "src/gretel/CMakeFiles/gretel_core.dir/analyzer.cpp.o.d"
  "/root/repo/src/gretel/anomaly_detector.cpp" "src/gretel/CMakeFiles/gretel_core.dir/anomaly_detector.cpp.o" "gcc" "src/gretel/CMakeFiles/gretel_core.dir/anomaly_detector.cpp.o.d"
  "/root/repo/src/gretel/db_io.cpp" "src/gretel/CMakeFiles/gretel_core.dir/db_io.cpp.o" "gcc" "src/gretel/CMakeFiles/gretel_core.dir/db_io.cpp.o.d"
  "/root/repo/src/gretel/fingerprint.cpp" "src/gretel/CMakeFiles/gretel_core.dir/fingerprint.cpp.o" "gcc" "src/gretel/CMakeFiles/gretel_core.dir/fingerprint.cpp.o.d"
  "/root/repo/src/gretel/fingerprint_db.cpp" "src/gretel/CMakeFiles/gretel_core.dir/fingerprint_db.cpp.o" "gcc" "src/gretel/CMakeFiles/gretel_core.dir/fingerprint_db.cpp.o.d"
  "/root/repo/src/gretel/json_export.cpp" "src/gretel/CMakeFiles/gretel_core.dir/json_export.cpp.o" "gcc" "src/gretel/CMakeFiles/gretel_core.dir/json_export.cpp.o.d"
  "/root/repo/src/gretel/lcs.cpp" "src/gretel/CMakeFiles/gretel_core.dir/lcs.cpp.o" "gcc" "src/gretel/CMakeFiles/gretel_core.dir/lcs.cpp.o.d"
  "/root/repo/src/gretel/matcher.cpp" "src/gretel/CMakeFiles/gretel_core.dir/matcher.cpp.o" "gcc" "src/gretel/CMakeFiles/gretel_core.dir/matcher.cpp.o.d"
  "/root/repo/src/gretel/noise_filter.cpp" "src/gretel/CMakeFiles/gretel_core.dir/noise_filter.cpp.o" "gcc" "src/gretel/CMakeFiles/gretel_core.dir/noise_filter.cpp.o.d"
  "/root/repo/src/gretel/op_detector.cpp" "src/gretel/CMakeFiles/gretel_core.dir/op_detector.cpp.o" "gcc" "src/gretel/CMakeFiles/gretel_core.dir/op_detector.cpp.o.d"
  "/root/repo/src/gretel/root_cause.cpp" "src/gretel/CMakeFiles/gretel_core.dir/root_cause.cpp.o" "gcc" "src/gretel/CMakeFiles/gretel_core.dir/root_cause.cpp.o.d"
  "/root/repo/src/gretel/symbols.cpp" "src/gretel/CMakeFiles/gretel_core.dir/symbols.cpp.o" "gcc" "src/gretel/CMakeFiles/gretel_core.dir/symbols.cpp.o.d"
  "/root/repo/src/gretel/training.cpp" "src/gretel/CMakeFiles/gretel_core.dir/training.cpp.o" "gcc" "src/gretel/CMakeFiles/gretel_core.dir/training.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/gretel_util.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/gretel_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/gretel_net.dir/DependInfo.cmake"
  "/root/repo/build/src/stack/CMakeFiles/gretel_stack.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/gretel_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/monitor/CMakeFiles/gretel_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/tempest/CMakeFiles/gretel_tempest.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
