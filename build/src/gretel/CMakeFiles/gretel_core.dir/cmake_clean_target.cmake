file(REMOVE_RECURSE
  "libgretel_core.a"
)
