file(REMOVE_RECURSE
  "CMakeFiles/gretel_tempest.dir/catalog.cpp.o"
  "CMakeFiles/gretel_tempest.dir/catalog.cpp.o.d"
  "CMakeFiles/gretel_tempest.dir/workload.cpp.o"
  "CMakeFiles/gretel_tempest.dir/workload.cpp.o.d"
  "libgretel_tempest.a"
  "libgretel_tempest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gretel_tempest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
