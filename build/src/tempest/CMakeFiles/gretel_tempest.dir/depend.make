# Empty dependencies file for gretel_tempest.
# This may be replaced when dependencies are built.
