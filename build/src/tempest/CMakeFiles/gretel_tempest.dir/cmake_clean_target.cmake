file(REMOVE_RECURSE
  "libgretel_tempest.a"
)
