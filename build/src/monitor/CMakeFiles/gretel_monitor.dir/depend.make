# Empty dependencies file for gretel_monitor.
# This may be replaced when dependencies are built.
