
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/monitor/metrics.cpp" "src/monitor/CMakeFiles/gretel_monitor.dir/metrics.cpp.o" "gcc" "src/monitor/CMakeFiles/gretel_monitor.dir/metrics.cpp.o.d"
  "/root/repo/src/monitor/resource_stream.cpp" "src/monitor/CMakeFiles/gretel_monitor.dir/resource_stream.cpp.o" "gcc" "src/monitor/CMakeFiles/gretel_monitor.dir/resource_stream.cpp.o.d"
  "/root/repo/src/monitor/watcher.cpp" "src/monitor/CMakeFiles/gretel_monitor.dir/watcher.cpp.o" "gcc" "src/monitor/CMakeFiles/gretel_monitor.dir/watcher.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stack/CMakeFiles/gretel_stack.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/gretel_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/gretel_net.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/gretel_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gretel_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
