file(REMOVE_RECURSE
  "libgretel_monitor.a"
)
