file(REMOVE_RECURSE
  "CMakeFiles/gretel_monitor.dir/metrics.cpp.o"
  "CMakeFiles/gretel_monitor.dir/metrics.cpp.o.d"
  "CMakeFiles/gretel_monitor.dir/resource_stream.cpp.o"
  "CMakeFiles/gretel_monitor.dir/resource_stream.cpp.o.d"
  "CMakeFiles/gretel_monitor.dir/watcher.cpp.o"
  "CMakeFiles/gretel_monitor.dir/watcher.cpp.o.d"
  "libgretel_monitor.a"
  "libgretel_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gretel_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
