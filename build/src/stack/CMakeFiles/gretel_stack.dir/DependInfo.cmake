
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stack/deployment.cpp" "src/stack/CMakeFiles/gretel_stack.dir/deployment.cpp.o" "gcc" "src/stack/CMakeFiles/gretel_stack.dir/deployment.cpp.o.d"
  "/root/repo/src/stack/operation.cpp" "src/stack/CMakeFiles/gretel_stack.dir/operation.cpp.o" "gcc" "src/stack/CMakeFiles/gretel_stack.dir/operation.cpp.o.d"
  "/root/repo/src/stack/workflow.cpp" "src/stack/CMakeFiles/gretel_stack.dir/workflow.cpp.o" "gcc" "src/stack/CMakeFiles/gretel_stack.dir/workflow.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/gretel_util.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/gretel_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/gretel_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
