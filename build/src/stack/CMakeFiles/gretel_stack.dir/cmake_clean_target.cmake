file(REMOVE_RECURSE
  "libgretel_stack.a"
)
