# Empty dependencies file for gretel_stack.
# This may be replaced when dependencies are built.
