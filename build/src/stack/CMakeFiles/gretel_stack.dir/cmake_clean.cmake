file(REMOVE_RECURSE
  "CMakeFiles/gretel_stack.dir/deployment.cpp.o"
  "CMakeFiles/gretel_stack.dir/deployment.cpp.o.d"
  "CMakeFiles/gretel_stack.dir/operation.cpp.o"
  "CMakeFiles/gretel_stack.dir/operation.cpp.o.d"
  "CMakeFiles/gretel_stack.dir/workflow.cpp.o"
  "CMakeFiles/gretel_stack.dir/workflow.cpp.o.d"
  "libgretel_stack.a"
  "libgretel_stack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gretel_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
