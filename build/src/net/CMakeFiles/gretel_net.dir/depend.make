# Empty dependencies file for gretel_net.
# This may be replaced when dependencies are built.
