file(REMOVE_RECURSE
  "CMakeFiles/gretel_net.dir/capture.cpp.o"
  "CMakeFiles/gretel_net.dir/capture.cpp.o.d"
  "CMakeFiles/gretel_net.dir/capture_file.cpp.o"
  "CMakeFiles/gretel_net.dir/capture_file.cpp.o.d"
  "CMakeFiles/gretel_net.dir/fabric.cpp.o"
  "CMakeFiles/gretel_net.dir/fabric.cpp.o.d"
  "CMakeFiles/gretel_net.dir/node.cpp.o"
  "CMakeFiles/gretel_net.dir/node.cpp.o.d"
  "CMakeFiles/gretel_net.dir/replay.cpp.o"
  "CMakeFiles/gretel_net.dir/replay.cpp.o.d"
  "libgretel_net.a"
  "libgretel_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gretel_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
