
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/capture.cpp" "src/net/CMakeFiles/gretel_net.dir/capture.cpp.o" "gcc" "src/net/CMakeFiles/gretel_net.dir/capture.cpp.o.d"
  "/root/repo/src/net/capture_file.cpp" "src/net/CMakeFiles/gretel_net.dir/capture_file.cpp.o" "gcc" "src/net/CMakeFiles/gretel_net.dir/capture_file.cpp.o.d"
  "/root/repo/src/net/fabric.cpp" "src/net/CMakeFiles/gretel_net.dir/fabric.cpp.o" "gcc" "src/net/CMakeFiles/gretel_net.dir/fabric.cpp.o.d"
  "/root/repo/src/net/node.cpp" "src/net/CMakeFiles/gretel_net.dir/node.cpp.o" "gcc" "src/net/CMakeFiles/gretel_net.dir/node.cpp.o.d"
  "/root/repo/src/net/replay.cpp" "src/net/CMakeFiles/gretel_net.dir/replay.cpp.o" "gcc" "src/net/CMakeFiles/gretel_net.dir/replay.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/gretel_util.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/gretel_wire.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
