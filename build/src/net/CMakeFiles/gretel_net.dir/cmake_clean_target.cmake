file(REMOVE_RECURSE
  "libgretel_net.a"
)
