file(REMOVE_RECURSE
  "CMakeFiles/integration_tests.dir/cmake_pch.hxx.gch"
  "CMakeFiles/integration_tests.dir/cmake_pch.hxx.gch.d"
  "CMakeFiles/integration_tests.dir/integration/analyzer_test.cpp.o"
  "CMakeFiles/integration_tests.dir/integration/analyzer_test.cpp.o.d"
  "CMakeFiles/integration_tests.dir/integration/correlation_test.cpp.o"
  "CMakeFiles/integration_tests.dir/integration/correlation_test.cpp.o.d"
  "CMakeFiles/integration_tests.dir/integration/hansel_test.cpp.o"
  "CMakeFiles/integration_tests.dir/integration/hansel_test.cpp.o.d"
  "CMakeFiles/integration_tests.dir/integration/log_analysis_test.cpp.o"
  "CMakeFiles/integration_tests.dir/integration/log_analysis_test.cpp.o.d"
  "CMakeFiles/integration_tests.dir/integration/pipeline_artifacts_test.cpp.o"
  "CMakeFiles/integration_tests.dir/integration/pipeline_artifacts_test.cpp.o.d"
  "CMakeFiles/integration_tests.dir/integration/scenarios_test.cpp.o"
  "CMakeFiles/integration_tests.dir/integration/scenarios_test.cpp.o.d"
  "CMakeFiles/integration_tests.dir/integration/training_test.cpp.o"
  "CMakeFiles/integration_tests.dir/integration/training_test.cpp.o.d"
  "integration_tests"
  "integration_tests.pdb"
  "integration_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
