file(REMOVE_RECURSE
  "CMakeFiles/detect_tests.dir/cmake_pch.hxx.gch"
  "CMakeFiles/detect_tests.dir/cmake_pch.hxx.gch.d"
  "CMakeFiles/detect_tests.dir/detect/ewma_test.cpp.o"
  "CMakeFiles/detect_tests.dir/detect/ewma_test.cpp.o.d"
  "CMakeFiles/detect_tests.dir/detect/latency_tracker_test.cpp.o"
  "CMakeFiles/detect_tests.dir/detect/latency_tracker_test.cpp.o.d"
  "CMakeFiles/detect_tests.dir/detect/level_shift_test.cpp.o"
  "CMakeFiles/detect_tests.dir/detect/level_shift_test.cpp.o.d"
  "CMakeFiles/detect_tests.dir/detect/series_analysis_test.cpp.o"
  "CMakeFiles/detect_tests.dir/detect/series_analysis_test.cpp.o.d"
  "CMakeFiles/detect_tests.dir/detect/zscore_test.cpp.o"
  "CMakeFiles/detect_tests.dir/detect/zscore_test.cpp.o.d"
  "detect_tests"
  "detect_tests.pdb"
  "detect_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detect_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
