tests/CMakeFiles/detect_tests.dir/detect/latency_tracker_test.cpp.o: \
 /root/repo/tests/detect/latency_tracker_test.cpp \
 /usr/include/stdc-predef.h /root/repo/src/detect/latency_tracker.h \
 /usr/include/c++/12/functional /usr/include/c++/12/memory \
 /usr/include/c++/12/optional /usr/include/c++/12/unordered_map \
 /usr/include/c++/12/vector /root/repo/src/detect/outlier.h \
 /usr/include/c++/12/string_view /root/repo/src/util/stats.h \
 /usr/include/c++/12/cstddef /usr/include/c++/12/span \
 /usr/include/c++/12/array /usr/include/c++/12/bits/stl_iterator.h \
 /usr/include/c++/12/bits/ranges_base.h /root/repo/src/util/time.h \
 /usr/include/c++/12/chrono /usr/include/c++/12/bits/chrono.h \
 /usr/include/c++/12/ratio /usr/include/c++/12/type_traits \
 /usr/include/c++/12/cstdint /usr/include/c++/12/limits \
 /usr/include/c++/12/ctime \
 /usr/include/x86_64-linux-gnu/c++/12/bits/c++config.h \
 /usr/include/time.h /usr/include/c++/12/bits/parse_numbers.h \
 /usr/include/c++/12/concepts /usr/include/c++/12/compare \
 /usr/include/c++/12/sstream /usr/include/c++/12/bits/charconv.h \
 /root/repo/src/wire/message.h /usr/include/c++/12/string \
 /root/repo/src/util/ids.h /root/repo/src/wire/api.h \
 /root/repo/src/wire/endpoint.h /root/miniconda/include/gtest/gtest.h \
 /root/repo/src/detect/level_shift.h /usr/include/c++/12/deque \
 /usr/include/c++/12/bits/stl_algobase.h \
 /usr/include/c++/12/bits/allocator.h \
 /usr/include/c++/12/bits/stl_construct.h \
 /usr/include/c++/12/bits/stl_uninitialized.h \
 /usr/include/c++/12/bits/stl_deque.h \
 /usr/include/c++/12/bits/concept_check.h \
 /usr/include/c++/12/bits/stl_iterator_base_types.h \
 /usr/include/c++/12/bits/stl_iterator_base_funcs.h \
 /usr/include/c++/12/initializer_list \
 /usr/include/c++/12/debug/assertions.h \
 /usr/include/c++/12/bits/refwrap.h \
 /usr/include/c++/12/bits/range_access.h \
 /usr/include/c++/12/bits/deque.tcc
