tests/CMakeFiles/util_tests.dir/util/stats_test.cpp.o: \
 /root/repo/tests/util/stats_test.cpp /usr/include/stdc-predef.h \
 /root/repo/src/util/stats.h /usr/include/c++/12/cstddef \
 /usr/include/c++/12/span /usr/include/c++/12/array \
 /usr/include/c++/12/bits/stl_iterator.h \
 /usr/include/c++/12/bits/ranges_base.h /usr/include/c++/12/vector \
 /root/miniconda/include/gtest/gtest.h /usr/include/c++/12/cmath \
 /usr/include/x86_64-linux-gnu/c++/12/bits/c++config.h \
 /usr/include/c++/12/bits/cpp_type_traits.h \
 /usr/include/c++/12/ext/type_traits.h /usr/include/math.h \
 /usr/include/x86_64-linux-gnu/bits/libc-header-start.h \
 /usr/include/features.h /usr/include/x86_64-linux-gnu/bits/types.h \
 /usr/include/x86_64-linux-gnu/bits/math-vector.h \
 /usr/include/x86_64-linux-gnu/bits/libm-simd-decl-stubs.h \
 /usr/include/x86_64-linux-gnu/bits/floatn.h \
 /usr/include/x86_64-linux-gnu/bits/flt-eval-method.h \
 /usr/include/x86_64-linux-gnu/bits/fp-logb.h \
 /usr/include/x86_64-linux-gnu/bits/fp-fast.h \
 /usr/include/x86_64-linux-gnu/bits/mathcalls-helper-functions.h \
 /usr/include/x86_64-linux-gnu/bits/mathcalls.h \
 /usr/include/x86_64-linux-gnu/bits/mathcalls-narrow.h \
 /usr/include/x86_64-linux-gnu/bits/iscanonical.h \
 /usr/include/c++/12/bits/std_abs.h /usr/include/c++/12/bits/specfun.h \
 /usr/include/c++/12/bits/stl_algobase.h /usr/include/c++/12/limits \
 /usr/include/c++/12/type_traits /usr/include/c++/12/tr1/gamma.tcc \
 /usr/include/c++/12/tr1/special_function_util.h \
 /usr/include/c++/12/tr1/bessel_function.tcc \
 /usr/include/c++/12/tr1/beta_function.tcc \
 /usr/include/c++/12/tr1/ell_integral.tcc \
 /usr/include/c++/12/tr1/exp_integral.tcc \
 /usr/include/c++/12/tr1/hypergeometric.tcc \
 /usr/include/c++/12/tr1/legendre_function.tcc \
 /usr/include/c++/12/tr1/modified_bessel_func.tcc \
 /usr/include/c++/12/tr1/poly_hermite.tcc \
 /usr/include/c++/12/tr1/poly_laguerre.tcc \
 /usr/include/c++/12/tr1/riemann_zeta.tcc
