tests/CMakeFiles/util_tests.dir/util/ids_test.cpp.o: \
 /root/repo/tests/util/ids_test.cpp /usr/include/stdc-predef.h \
 /root/repo/src/util/ids.h /usr/include/c++/12/compare \
 /usr/include/c++/12/cstdint /usr/include/c++/12/functional \
 /root/miniconda/include/gtest/gtest.h /usr/include/c++/12/unordered_set \
 /usr/include/c++/12/type_traits /usr/include/c++/12/initializer_list \
 /usr/include/c++/12/bits/allocator.h \
 /usr/include/c++/12/ext/alloc_traits.h \
 /usr/include/c++/12/ext/aligned_buffer.h \
 /usr/include/c++/12/bits/stl_pair.h \
 /usr/include/c++/12/bits/stl_function.h \
 /usr/include/c++/12/bits/functional_hash.h \
 /usr/include/c++/12/bits/hashtable.h \
 /usr/include/c++/12/bits/unordered_set.h \
 /usr/include/c++/12/bits/range_access.h \
 /usr/include/c++/12/bits/erase_if.h
