tests/CMakeFiles/util_tests.dir/util/time_test.cpp.o: \
 /root/repo/tests/util/time_test.cpp /usr/include/stdc-predef.h \
 /root/repo/src/util/time.h /usr/include/c++/12/chrono \
 /usr/include/c++/12/bits/chrono.h /usr/include/c++/12/ratio \
 /usr/include/c++/12/type_traits /usr/include/c++/12/cstdint \
 /usr/include/c++/12/limits /usr/include/c++/12/ctime \
 /usr/include/x86_64-linux-gnu/c++/12/bits/c++config.h \
 /usr/include/time.h /usr/include/c++/12/bits/parse_numbers.h \
 /usr/include/c++/12/concepts /usr/include/c++/12/compare \
 /usr/include/c++/12/sstream /usr/include/c++/12/bits/charconv.h \
 /root/miniconda/include/gtest/gtest.h
