tests/CMakeFiles/util_tests.dir/util/logging_test.cpp.o: \
 /root/repo/tests/util/logging_test.cpp /usr/include/stdc-predef.h \
 /root/repo/src/util/logging.h /usr/include/c++/12/sstream \
 /usr/include/c++/12/string /usr/include/c++/12/string_view \
 /root/miniconda/include/gtest/gtest.h
