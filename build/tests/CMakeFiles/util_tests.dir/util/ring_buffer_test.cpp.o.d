tests/CMakeFiles/util_tests.dir/util/ring_buffer_test.cpp.o: \
 /root/repo/tests/util/ring_buffer_test.cpp /usr/include/stdc-predef.h \
 /root/repo/src/util/ring_buffer.h /usr/include/c++/12/cassert \
 /usr/include/x86_64-linux-gnu/c++/12/bits/c++config.h \
 /usr/include/assert.h /usr/include/features.h \
 /usr/include/c++/12/cstddef /usr/include/c++/12/cstdint \
 /usr/include/c++/12/vector /root/miniconda/include/gtest/gtest.h
