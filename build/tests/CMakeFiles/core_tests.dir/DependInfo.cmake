
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/build/tests/CMakeFiles/core_tests.dir/cmake_pch.hxx.cxx" "tests/CMakeFiles/core_tests.dir/cmake_pch.hxx.gch" "gcc" "tests/CMakeFiles/core_tests.dir/cmake_pch.hxx.gch.d"
  "/root/repo/build/tests/CMakeFiles/core_tests.dir/cmake_pch.hxx" "tests/CMakeFiles/core_tests.dir/cmake_pch.hxx.gch" "gcc" "tests/CMakeFiles/core_tests.dir/cmake_pch.hxx.gch.d"
  "/root/repo/tests/core/branched_fingerprint_test.cpp" "tests/CMakeFiles/core_tests.dir/core/branched_fingerprint_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/branched_fingerprint_test.cpp.o.d"
  "/root/repo/build/tests/CMakeFiles/core_tests.dir/cmake_pch.hxx" "tests/CMakeFiles/core_tests.dir/core/branched_fingerprint_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/branched_fingerprint_test.cpp.o.d"
  "/root/repo/tests/core/db_io_test.cpp" "tests/CMakeFiles/core_tests.dir/core/db_io_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/db_io_test.cpp.o.d"
  "/root/repo/build/tests/CMakeFiles/core_tests.dir/cmake_pch.hxx" "tests/CMakeFiles/core_tests.dir/core/db_io_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/db_io_test.cpp.o.d"
  "/root/repo/tests/core/fingerprint_test.cpp" "tests/CMakeFiles/core_tests.dir/core/fingerprint_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/fingerprint_test.cpp.o.d"
  "/root/repo/build/tests/CMakeFiles/core_tests.dir/cmake_pch.hxx" "tests/CMakeFiles/core_tests.dir/core/fingerprint_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/fingerprint_test.cpp.o.d"
  "/root/repo/tests/core/json_export_test.cpp" "tests/CMakeFiles/core_tests.dir/core/json_export_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/json_export_test.cpp.o.d"
  "/root/repo/build/tests/CMakeFiles/core_tests.dir/cmake_pch.hxx" "tests/CMakeFiles/core_tests.dir/core/json_export_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/json_export_test.cpp.o.d"
  "/root/repo/tests/core/lcs_test.cpp" "tests/CMakeFiles/core_tests.dir/core/lcs_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/lcs_test.cpp.o.d"
  "/root/repo/build/tests/CMakeFiles/core_tests.dir/cmake_pch.hxx" "tests/CMakeFiles/core_tests.dir/core/lcs_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/lcs_test.cpp.o.d"
  "/root/repo/tests/core/matcher_test.cpp" "tests/CMakeFiles/core_tests.dir/core/matcher_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/matcher_test.cpp.o.d"
  "/root/repo/build/tests/CMakeFiles/core_tests.dir/cmake_pch.hxx" "tests/CMakeFiles/core_tests.dir/core/matcher_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/matcher_test.cpp.o.d"
  "/root/repo/tests/core/noise_filter_test.cpp" "tests/CMakeFiles/core_tests.dir/core/noise_filter_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/noise_filter_test.cpp.o.d"
  "/root/repo/build/tests/CMakeFiles/core_tests.dir/cmake_pch.hxx" "tests/CMakeFiles/core_tests.dir/core/noise_filter_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/noise_filter_test.cpp.o.d"
  "/root/repo/tests/core/op_detector_test.cpp" "tests/CMakeFiles/core_tests.dir/core/op_detector_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/op_detector_test.cpp.o.d"
  "/root/repo/build/tests/CMakeFiles/core_tests.dir/cmake_pch.hxx" "tests/CMakeFiles/core_tests.dir/core/op_detector_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/op_detector_test.cpp.o.d"
  "/root/repo/tests/core/root_cause_test.cpp" "tests/CMakeFiles/core_tests.dir/core/root_cause_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/root_cause_test.cpp.o.d"
  "/root/repo/build/tests/CMakeFiles/core_tests.dir/cmake_pch.hxx" "tests/CMakeFiles/core_tests.dir/core/root_cause_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/root_cause_test.cpp.o.d"
  "/root/repo/tests/core/symbols_test.cpp" "tests/CMakeFiles/core_tests.dir/core/symbols_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/symbols_test.cpp.o.d"
  "/root/repo/build/tests/CMakeFiles/core_tests.dir/cmake_pch.hxx" "tests/CMakeFiles/core_tests.dir/core/symbols_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/symbols_test.cpp.o.d"
  "/root/repo/tests/core/window_test.cpp" "tests/CMakeFiles/core_tests.dir/core/window_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/window_test.cpp.o.d"
  "/root/repo/build/tests/CMakeFiles/core_tests.dir/cmake_pch.hxx" "tests/CMakeFiles/core_tests.dir/core/window_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/window_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gretel/CMakeFiles/gretel_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hansel/CMakeFiles/gretel_hansel.dir/DependInfo.cmake"
  "/root/repo/build/src/logs/CMakeFiles/gretel_logs.dir/DependInfo.cmake"
  "/root/repo/build/src/monitor/CMakeFiles/gretel_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/gretel_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/tempest/CMakeFiles/gretel_tempest.dir/DependInfo.cmake"
  "/root/repo/build/src/stack/CMakeFiles/gretel_stack.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/gretel_net.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/gretel_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gretel_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
