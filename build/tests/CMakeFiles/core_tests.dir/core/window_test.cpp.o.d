tests/CMakeFiles/core_tests.dir/core/window_test.cpp.o: \
 /root/repo/tests/core/window_test.cpp /usr/include/stdc-predef.h \
 /root/repo/src/gretel/window.h /usr/include/c++/12/cstdint \
 /usr/include/c++/12/vector /root/repo/src/util/ring_buffer.h \
 /usr/include/c++/12/cassert \
 /usr/include/x86_64-linux-gnu/c++/12/bits/c++config.h \
 /usr/include/assert.h /usr/include/features.h \
 /usr/include/c++/12/cstddef /root/repo/src/wire/message.h \
 /usr/include/c++/12/string /root/repo/src/util/ids.h \
 /usr/include/c++/12/compare /usr/include/c++/12/functional \
 /root/repo/src/util/time.h /usr/include/c++/12/chrono \
 /usr/include/c++/12/bits/chrono.h /usr/include/c++/12/ratio \
 /usr/include/c++/12/type_traits /usr/include/c++/12/limits \
 /usr/include/c++/12/ctime /usr/include/time.h \
 /usr/include/c++/12/bits/parse_numbers.h /usr/include/c++/12/concepts \
 /usr/include/c++/12/sstream /usr/include/c++/12/bits/charconv.h \
 /root/repo/src/wire/api.h /usr/include/c++/12/optional \
 /usr/include/c++/12/string_view /usr/include/c++/12/unordered_map \
 /root/repo/src/wire/endpoint.h /root/miniconda/include/gtest/gtest.h \
 /root/repo/src/gretel/config.h /usr/include/c++/12/algorithm \
 /usr/include/c++/12/bits/stl_algobase.h \
 /usr/include/c++/12/bits/stl_algo.h \
 /usr/include/c++/12/bits/ranges_algo.h \
 /usr/include/c++/12/bits/ranges_algobase.h \
 /usr/include/c++/12/bits/ranges_util.h \
 /usr/include/c++/12/bits/ranges_base.h \
 /usr/include/c++/12/bits/utility.h \
 /usr/include/c++/12/bits/uniform_int_dist.h \
 /usr/include/c++/12/pstl/glue_algorithm_defs.h \
 /usr/include/c++/12/bits/stl_pair.h \
 /usr/include/c++/12/pstl/execution_defs.h \
 /root/repo/src/gretel/matcher.h /usr/include/c++/12/span \
 /usr/include/c++/12/array /usr/include/c++/12/bits/stl_iterator.h
