tests/CMakeFiles/core_tests.dir/core/op_detector_test.cpp.o: \
 /root/repo/tests/core/op_detector_test.cpp /usr/include/stdc-predef.h \
 /root/repo/src/gretel/op_detector.h /usr/include/c++/12/span \
 /usr/include/c++/12/array /usr/include/c++/12/cstddef \
 /usr/include/c++/12/bits/stl_iterator.h \
 /usr/include/c++/12/bits/ranges_base.h /usr/include/c++/12/vector \
 /root/repo/src/gretel/config.h /usr/include/c++/12/algorithm \
 /usr/include/c++/12/bits/stl_algobase.h \
 /usr/include/c++/12/bits/stl_algo.h \
 /usr/include/c++/12/bits/ranges_algo.h \
 /usr/include/c++/12/bits/ranges_algobase.h \
 /usr/include/c++/12/bits/ranges_util.h \
 /usr/include/c++/12/bits/utility.h \
 /usr/include/c++/12/bits/uniform_int_dist.h \
 /usr/include/c++/12/pstl/glue_algorithm_defs.h \
 /usr/include/c++/12/bits/stl_pair.h \
 /usr/include/c++/12/pstl/execution_defs.h \
 /root/repo/src/gretel/matcher.h /usr/include/c++/12/string \
 /root/repo/src/wire/api.h /usr/include/c++/12/cstdint \
 /usr/include/c++/12/optional /usr/include/c++/12/string_view \
 /usr/include/c++/12/unordered_map /root/repo/src/util/ids.h \
 /usr/include/c++/12/compare /usr/include/c++/12/functional \
 /root/repo/src/gretel/fingerprint_db.h \
 /root/repo/src/gretel/fingerprint.h /root/repo/src/gretel/noise_filter.h \
 /root/repo/src/wire/message.h /root/repo/src/util/time.h \
 /usr/include/c++/12/chrono /usr/include/c++/12/bits/chrono.h \
 /usr/include/c++/12/ratio /usr/include/c++/12/type_traits \
 /usr/include/c++/12/limits /usr/include/c++/12/ctime \
 /usr/include/x86_64-linux-gnu/c++/12/bits/c++config.h \
 /usr/include/time.h /usr/include/c++/12/bits/parse_numbers.h \
 /usr/include/c++/12/concepts /usr/include/c++/12/sstream \
 /usr/include/c++/12/bits/charconv.h /root/repo/src/wire/endpoint.h \
 /root/repo/src/gretel/symbols.h /root/repo/src/gretel/report.h \
 /root/repo/src/detect/latency_tracker.h /usr/include/c++/12/memory \
 /root/repo/src/detect/outlier.h /root/repo/src/util/stats.h \
 /root/miniconda/include/gtest/gtest.h
