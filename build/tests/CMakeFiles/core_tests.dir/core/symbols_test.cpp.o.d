tests/CMakeFiles/core_tests.dir/core/symbols_test.cpp.o: \
 /root/repo/tests/core/symbols_test.cpp /usr/include/stdc-predef.h \
 /root/repo/src/gretel/symbols.h /usr/include/c++/12/string \
 /usr/include/c++/12/vector /root/repo/src/wire/api.h \
 /usr/include/c++/12/cstdint /usr/include/c++/12/optional \
 /usr/include/c++/12/string_view /usr/include/c++/12/unordered_map \
 /root/repo/src/util/ids.h /usr/include/c++/12/compare \
 /usr/include/c++/12/functional /root/miniconda/include/gtest/gtest.h
