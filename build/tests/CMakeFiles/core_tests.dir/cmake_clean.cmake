file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/cmake_pch.hxx.gch"
  "CMakeFiles/core_tests.dir/cmake_pch.hxx.gch.d"
  "CMakeFiles/core_tests.dir/core/branched_fingerprint_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/branched_fingerprint_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/db_io_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/db_io_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/fingerprint_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/fingerprint_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/json_export_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/json_export_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/lcs_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/lcs_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/matcher_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/matcher_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/noise_filter_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/noise_filter_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/op_detector_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/op_detector_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/root_cause_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/root_cause_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/symbols_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/symbols_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/window_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/window_test.cpp.o.d"
  "core_tests"
  "core_tests.pdb"
  "core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
