
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/build/tests/CMakeFiles/sim_tests.dir/cmake_pch.hxx.cxx" "tests/CMakeFiles/sim_tests.dir/cmake_pch.hxx.gch" "gcc" "tests/CMakeFiles/sim_tests.dir/cmake_pch.hxx.gch.d"
  "/root/repo/build/tests/CMakeFiles/sim_tests.dir/cmake_pch.hxx" "tests/CMakeFiles/sim_tests.dir/cmake_pch.hxx.gch" "gcc" "tests/CMakeFiles/sim_tests.dir/cmake_pch.hxx.gch.d"
  "/root/repo/tests/sim/catalog_test.cpp" "tests/CMakeFiles/sim_tests.dir/sim/catalog_test.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/catalog_test.cpp.o.d"
  "/root/repo/build/tests/CMakeFiles/sim_tests.dir/cmake_pch.hxx" "tests/CMakeFiles/sim_tests.dir/sim/catalog_test.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/catalog_test.cpp.o.d"
  "/root/repo/tests/sim/deployment_test.cpp" "tests/CMakeFiles/sim_tests.dir/sim/deployment_test.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/deployment_test.cpp.o.d"
  "/root/repo/build/tests/CMakeFiles/sim_tests.dir/cmake_pch.hxx" "tests/CMakeFiles/sim_tests.dir/sim/deployment_test.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/deployment_test.cpp.o.d"
  "/root/repo/tests/sim/fabric_test.cpp" "tests/CMakeFiles/sim_tests.dir/sim/fabric_test.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/fabric_test.cpp.o.d"
  "/root/repo/build/tests/CMakeFiles/sim_tests.dir/cmake_pch.hxx" "tests/CMakeFiles/sim_tests.dir/sim/fabric_test.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/fabric_test.cpp.o.d"
  "/root/repo/tests/sim/logging_test.cpp" "tests/CMakeFiles/sim_tests.dir/sim/logging_test.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/logging_test.cpp.o.d"
  "/root/repo/build/tests/CMakeFiles/sim_tests.dir/cmake_pch.hxx" "tests/CMakeFiles/sim_tests.dir/sim/logging_test.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/logging_test.cpp.o.d"
  "/root/repo/tests/sim/monitor_test.cpp" "tests/CMakeFiles/sim_tests.dir/sim/monitor_test.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/monitor_test.cpp.o.d"
  "/root/repo/build/tests/CMakeFiles/sim_tests.dir/cmake_pch.hxx" "tests/CMakeFiles/sim_tests.dir/sim/monitor_test.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/monitor_test.cpp.o.d"
  "/root/repo/tests/sim/node_test.cpp" "tests/CMakeFiles/sim_tests.dir/sim/node_test.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/node_test.cpp.o.d"
  "/root/repo/build/tests/CMakeFiles/sim_tests.dir/cmake_pch.hxx" "tests/CMakeFiles/sim_tests.dir/sim/node_test.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/node_test.cpp.o.d"
  "/root/repo/tests/sim/resource_stream_test.cpp" "tests/CMakeFiles/sim_tests.dir/sim/resource_stream_test.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/resource_stream_test.cpp.o.d"
  "/root/repo/build/tests/CMakeFiles/sim_tests.dir/cmake_pch.hxx" "tests/CMakeFiles/sim_tests.dir/sim/resource_stream_test.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/resource_stream_test.cpp.o.d"
  "/root/repo/tests/sim/workflow_test.cpp" "tests/CMakeFiles/sim_tests.dir/sim/workflow_test.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/workflow_test.cpp.o.d"
  "/root/repo/build/tests/CMakeFiles/sim_tests.dir/cmake_pch.hxx" "tests/CMakeFiles/sim_tests.dir/sim/workflow_test.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/workflow_test.cpp.o.d"
  "/root/repo/tests/sim/workload_test.cpp" "tests/CMakeFiles/sim_tests.dir/sim/workload_test.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/workload_test.cpp.o.d"
  "/root/repo/build/tests/CMakeFiles/sim_tests.dir/cmake_pch.hxx" "tests/CMakeFiles/sim_tests.dir/sim/workload_test.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/workload_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gretel/CMakeFiles/gretel_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hansel/CMakeFiles/gretel_hansel.dir/DependInfo.cmake"
  "/root/repo/build/src/logs/CMakeFiles/gretel_logs.dir/DependInfo.cmake"
  "/root/repo/build/src/monitor/CMakeFiles/gretel_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/gretel_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/tempest/CMakeFiles/gretel_tempest.dir/DependInfo.cmake"
  "/root/repo/build/src/stack/CMakeFiles/gretel_stack.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/gretel_net.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/gretel_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gretel_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
