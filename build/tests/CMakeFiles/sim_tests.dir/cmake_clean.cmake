file(REMOVE_RECURSE
  "CMakeFiles/sim_tests.dir/cmake_pch.hxx.gch"
  "CMakeFiles/sim_tests.dir/cmake_pch.hxx.gch.d"
  "CMakeFiles/sim_tests.dir/sim/catalog_test.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/catalog_test.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/deployment_test.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/deployment_test.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/fabric_test.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/fabric_test.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/logging_test.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/logging_test.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/monitor_test.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/monitor_test.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/node_test.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/node_test.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/resource_stream_test.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/resource_stream_test.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/workflow_test.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/workflow_test.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/workload_test.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/workload_test.cpp.o.d"
  "sim_tests"
  "sim_tests.pdb"
  "sim_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
