tests/CMakeFiles/sim_tests.dir/sim/workload_test.cpp.o: \
 /root/repo/tests/sim/workload_test.cpp /usr/include/stdc-predef.h \
 /root/repo/src/tempest/workload.h /usr/include/c++/12/cstdint \
 /usr/include/c++/12/optional /usr/include/c++/12/vector \
 /root/repo/src/stack/faults.h /usr/include/c++/12/string \
 /root/repo/src/stack/logging.h /usr/include/c++/12/string_view \
 /root/repo/src/util/time.h /usr/include/c++/12/chrono \
 /usr/include/c++/12/bits/chrono.h /usr/include/c++/12/ratio \
 /usr/include/c++/12/type_traits /usr/include/c++/12/limits \
 /usr/include/c++/12/ctime \
 /usr/include/x86_64-linux-gnu/c++/12/bits/c++config.h \
 /usr/include/time.h /usr/include/c++/12/bits/parse_numbers.h \
 /usr/include/c++/12/concepts /usr/include/c++/12/compare \
 /usr/include/c++/12/sstream /usr/include/c++/12/bits/charconv.h \
 /root/repo/src/wire/api.h /usr/include/c++/12/unordered_map \
 /root/repo/src/util/ids.h /usr/include/c++/12/functional \
 /root/repo/src/wire/endpoint.h /root/repo/src/stack/workflow.h \
 /usr/include/c++/12/span /usr/include/c++/12/array \
 /usr/include/c++/12/cstddef /usr/include/c++/12/bits/stl_iterator.h \
 /usr/include/c++/12/bits/ranges_base.h /root/repo/src/net/capture.h \
 /root/repo/src/wire/message.h /root/repo/src/stack/deployment.h \
 /usr/include/c++/12/memory /root/repo/src/net/fabric.h \
 /root/repo/src/util/rng.h /usr/include/c++/12/cmath \
 /usr/include/c++/12/bits/cpp_type_traits.h \
 /usr/include/c++/12/ext/type_traits.h /usr/include/math.h \
 /usr/include/x86_64-linux-gnu/bits/libc-header-start.h \
 /usr/include/features.h /usr/include/x86_64-linux-gnu/bits/types.h \
 /usr/include/x86_64-linux-gnu/bits/math-vector.h \
 /usr/include/x86_64-linux-gnu/bits/libm-simd-decl-stubs.h \
 /usr/include/x86_64-linux-gnu/bits/floatn.h \
 /usr/include/x86_64-linux-gnu/bits/flt-eval-method.h \
 /usr/include/x86_64-linux-gnu/bits/fp-logb.h \
 /usr/include/x86_64-linux-gnu/bits/fp-fast.h \
 /usr/include/x86_64-linux-gnu/bits/mathcalls-helper-functions.h \
 /usr/include/x86_64-linux-gnu/bits/mathcalls.h \
 /usr/include/x86_64-linux-gnu/bits/mathcalls-narrow.h \
 /usr/include/x86_64-linux-gnu/bits/iscanonical.h \
 /usr/include/c++/12/bits/std_abs.h /usr/include/c++/12/bits/specfun.h \
 /usr/include/c++/12/bits/stl_algobase.h \
 /usr/include/c++/12/tr1/gamma.tcc \
 /usr/include/c++/12/tr1/special_function_util.h \
 /usr/include/c++/12/tr1/bessel_function.tcc \
 /usr/include/c++/12/tr1/beta_function.tcc \
 /usr/include/c++/12/tr1/ell_integral.tcc \
 /usr/include/c++/12/tr1/exp_integral.tcc \
 /usr/include/c++/12/tr1/hypergeometric.tcc \
 /usr/include/c++/12/tr1/legendre_function.tcc \
 /usr/include/c++/12/tr1/modified_bessel_func.tcc \
 /usr/include/c++/12/tr1/poly_hermite.tcc \
 /usr/include/c++/12/tr1/poly_laguerre.tcc \
 /usr/include/c++/12/tr1/riemann_zeta.tcc /usr/include/c++/12/numeric \
 /usr/include/c++/12/bits/stl_iterator_base_types.h \
 /usr/include/c++/12/bits/stl_numeric.h \
 /usr/include/c++/12/bits/concept_check.h \
 /usr/include/c++/12/debug/debug.h /usr/include/c++/12/bits/move.h \
 /usr/include/c++/12/bit /usr/include/c++/12/ext/numeric_traits.h \
 /usr/include/c++/12/bits/stl_function.h \
 /usr/include/c++/12/pstl/glue_numeric_defs.h \
 /usr/include/c++/12/pstl/execution_defs.h /root/repo/src/net/node.h \
 /root/repo/src/stack/operation.h /root/repo/src/tempest/catalog.h \
 /root/miniconda/include/gtest/gtest.h /usr/include/c++/12/set
