tests/CMakeFiles/wire_tests.dir/wire/capture_file_test.cpp.o: \
 /root/repo/tests/wire/capture_file_test.cpp /usr/include/stdc-predef.h \
 /root/repo/src/net/capture_file.h /usr/include/c++/12/optional \
 /usr/include/c++/12/span /usr/include/c++/12/array \
 /usr/include/c++/12/cstddef /usr/include/c++/12/bits/stl_iterator.h \
 /usr/include/c++/12/bits/ranges_base.h /usr/include/c++/12/string \
 /usr/include/c++/12/vector /root/repo/src/net/capture.h \
 /usr/include/c++/12/cstdint /usr/include/c++/12/unordered_map \
 /root/repo/src/wire/api.h /usr/include/c++/12/string_view \
 /root/repo/src/util/ids.h /usr/include/c++/12/compare \
 /usr/include/c++/12/functional /root/repo/src/wire/message.h \
 /root/repo/src/util/time.h /usr/include/c++/12/chrono \
 /usr/include/c++/12/bits/chrono.h /usr/include/c++/12/ratio \
 /usr/include/c++/12/type_traits /usr/include/c++/12/limits \
 /usr/include/c++/12/ctime \
 /usr/include/x86_64-linux-gnu/c++/12/bits/c++config.h \
 /usr/include/time.h /usr/include/c++/12/bits/parse_numbers.h \
 /usr/include/c++/12/concepts /usr/include/c++/12/sstream \
 /usr/include/c++/12/bits/charconv.h /root/repo/src/wire/endpoint.h \
 /root/miniconda/include/gtest/gtest.h /usr/include/c++/12/cstdio \
 /usr/include/stdio.h
