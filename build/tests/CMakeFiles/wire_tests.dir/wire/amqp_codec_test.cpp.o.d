tests/CMakeFiles/wire_tests.dir/wire/amqp_codec_test.cpp.o: \
 /root/repo/tests/wire/amqp_codec_test.cpp /usr/include/stdc-predef.h \
 /root/repo/src/wire/amqp_codec.h /usr/include/c++/12/cstdint \
 /usr/include/c++/12/optional /usr/include/c++/12/string \
 /usr/include/c++/12/string_view /root/miniconda/include/gtest/gtest.h
