file(REMOVE_RECURSE
  "CMakeFiles/wire_tests.dir/cmake_pch.hxx.gch"
  "CMakeFiles/wire_tests.dir/cmake_pch.hxx.gch.d"
  "CMakeFiles/wire_tests.dir/wire/amqp_codec_test.cpp.o"
  "CMakeFiles/wire_tests.dir/wire/amqp_codec_test.cpp.o.d"
  "CMakeFiles/wire_tests.dir/wire/api_test.cpp.o"
  "CMakeFiles/wire_tests.dir/wire/api_test.cpp.o.d"
  "CMakeFiles/wire_tests.dir/wire/capture_file_test.cpp.o"
  "CMakeFiles/wire_tests.dir/wire/capture_file_test.cpp.o.d"
  "CMakeFiles/wire_tests.dir/wire/capture_test.cpp.o"
  "CMakeFiles/wire_tests.dir/wire/capture_test.cpp.o.d"
  "CMakeFiles/wire_tests.dir/wire/http_codec_test.cpp.o"
  "CMakeFiles/wire_tests.dir/wire/http_codec_test.cpp.o.d"
  "wire_tests"
  "wire_tests.pdb"
  "wire_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wire_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
