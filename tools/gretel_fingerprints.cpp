// gretel_fingerprints — inspect a trained fingerprint database.
//
//   gretel_fingerprints --db fingerprints.db [--seed N] [--fraction F]
//       list                 (default: every fingerprint, one line each)
//       --show <name>        full API sequence + Algorithm-1 regex form
//       --containing <api-substring>   fingerprints using a matching API
#include <cstdio>

#include "gretel/db_io.h"
#include "gretel/symbols.h"
#include "tempest/catalog.h"
#include "tools/cli_common.h"

int main(int argc, char** argv) {
  using namespace gretel;
  const tools::Args args(argc, argv);
  const auto db_path = args.get("--db");
  if (!db_path || args.has_flag("--help")) {
    std::fprintf(stderr,
                 "usage: gretel_fingerprints --db <file> [--seed N] "
                 "[--fraction F] [--show <name>] [--containing <substr>]\n");
    return db_path ? 0 : 2;
  }

  const auto seed =
      static_cast<std::uint64_t>(args.get_int("--seed", 0xC0DE2016L));
  const auto catalog =
      tempest::TempestCatalog::build(seed, args.get_double("--fraction", 1.0));
  const auto db = core::load_fingerprint_db(*db_path, catalog.apis());
  if (!db) {
    std::fprintf(stderr, "error: cannot load %s (catalog mismatch?)\n",
                 db_path->c_str());
    return 1;
  }

  if (const auto show = args.get("--show")) {
    for (const auto& fp : db->all()) {
      if (fp.name != *show) continue;
      std::printf("%s (operation %u): %zu APIs, %zu state changes\n",
                  fp.name.c_str(), fp.op.value(), fp.size(),
                  fp.state_sequence.size());
      for (auto api : fp.sequence) {
        const auto& desc = catalog.apis().get(api);
        std::printf("  %c %s\n", desc.state_change() ? '*' : ' ',
                    desc.display_name().c_str());
      }
      // Algorithm-1 regular-expression form with Unicode symbols, printed
      // as escaped code points.
      const core::SymbolTable symbols(catalog.apis());
      const auto regex = fp.regex_string(symbols, catalog.apis(), true);
      std::printf("regex: ");
      for (char32_t c : regex) {
        if (c == U'*') {
          std::printf("*");
        } else {
          std::printf("\\u%04X", static_cast<unsigned>(c));
        }
      }
      std::printf("\n");
      return 0;
    }
    std::fprintf(stderr, "no fingerprint named %s\n", show->c_str());
    return 1;
  }

  const auto filter = args.get("--containing");
  std::size_t shown = 0;
  for (const auto& fp : db->all()) {
    if (filter) {
      bool hit = false;
      for (auto api : fp.sequence) {
        hit = hit || catalog.apis().get(api).display_name().find(*filter) !=
                         std::string::npos;
      }
      if (!hit) continue;
    }
    std::printf("%-24s ops=%-5u size=%-4zu state=%-4zu\n", fp.name.c_str(),
                fp.op.value(), fp.size(), fp.state_sequence.size());
    ++shown;
  }
  std::printf("%zu fingerprint(s)\n", shown);
  return 0;
}
