// gretel_train — offline fingerprint learning (§5, §7.1).
//
// Builds the Tempest-like catalog, runs every operation in isolation
// against the simulated deployment, learns the fingerprints (Algorithm 1),
// prints the Table-1-style characterization, and saves the database for
// gretel_analyze.
//
//   gretel_train --out fingerprints.db [--fraction 1.0] [--seed N]
//                [--repeats 3]
#include <cstdio>

#include "gretel/db_io.h"
#include "gretel/training.h"
#include "tools/cli_common.h"

int main(int argc, char** argv) {
  using namespace gretel;
  const tools::Args args(argc, argv);
  const auto out = args.get("--out");
  if (!out || args.has_flag("--help")) {
    std::fprintf(stderr,
                 "usage: gretel_train --out <file> [--fraction F] "
                 "[--seed N] [--repeats R]\n");
    return out ? 0 : 2;
  }

  const auto seed =
      static_cast<std::uint64_t>(args.get_int("--seed", 0xC0DE2016L));
  const double fraction = args.get_double("--fraction", 1.0);

  const auto catalog = tempest::TempestCatalog::build(seed, fraction);
  auto deployment = stack::Deployment::standard(3);

  core::TrainingOptions options;
  options.repeats = static_cast<int>(args.get_int("--repeats", 3));
  const auto report = core::learn_fingerprints(catalog, deployment, options);

  std::printf("%-10s %6s %10s %10s %10s %10s\n", "Category", "Tests",
              "uniq RPC", "uniq REST", "FP w/RPC", "FP w/o");
  for (std::size_t c = 0; c < stack::kCategories; ++c) {
    const auto& s = report.per_category[c];
    std::printf("%-10s %6d %10zu %10zu %10.1f %10.1f\n",
                std::string(to_string(static_cast<stack::Category>(c)))
                    .c_str(),
                s.tests, s.unique_rpc.size(), s.unique_rest.size(),
                s.avg_fingerprint(), s.avg_fingerprint_norpc());
  }
  std::printf("FPmax = %zu over %zu fingerprints\n", report.fp_max,
              report.db.size());

  if (!core::save_fingerprint_db(*out, report.db, catalog.apis())) {
    std::fprintf(stderr, "error: could not write %s\n", out->c_str());
    return 1;
  }
  std::printf("fingerprint database written to %s\n", out->c_str());
  return 0;
}
