// gretel_capture — records a workload's control-plane traffic to a capture
// file (the tcpdump/tcpreplay half of the §7.4.1 pipeline).
//
//   gretel_capture --out traffic.cap [--tests 100] [--faults 1]
//                  [--window-s 60] [--seed N] [--fraction 1.0]
//                  [--correlation-ids]
//
// Fault injection options (environmental, for root-cause demos):
//   --cpu-surge <service>       e.g. --cpu-surge neutron
//   --crash <service>:<daemon>  e.g. --crash nova-compute:nova-compute
#include <cstdio>

#include "net/capture_file.h"
#include "stack/workflow.h"
#include "tempest/workload.h"
#include "tools/cli_common.h"

namespace {

std::optional<gretel::wire::ServiceKind> parse_service(std::string_view s) {
  using gretel::wire::ServiceKind;
  for (int k = 0; k < static_cast<int>(ServiceKind::Unknown); ++k) {
    if (to_string(static_cast<ServiceKind>(k)) == s)
      return static_cast<ServiceKind>(k);
  }
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gretel;
  const tools::Args args(argc, argv);
  const auto out = args.get("--out");
  if (!out || args.has_flag("--help")) {
    std::fprintf(stderr,
                 "usage: gretel_capture --out <file> [--tests N] "
                 "[--faults K] [--window-s S] [--seed N] [--fraction F] "
                 "[--correlation-ids] [--cpu-surge svc] "
                 "[--crash svc:daemon]\n");
    return out ? 0 : 2;
  }

  const auto seed =
      static_cast<std::uint64_t>(args.get_int("--seed", 0xC0DE2016L));
  const auto catalog =
      tempest::TempestCatalog::build(seed, args.get_double("--fraction", 1.0));
  auto deployment = stack::Deployment::standard(3);

  tempest::WorkloadSpec spec;
  spec.concurrent_tests = static_cast<int>(args.get_int("--tests", 100));
  spec.faults = static_cast<int>(args.get_int("--faults", 1));
  spec.window =
      util::SimDuration::seconds(args.get_int("--window-s", 60));
  spec.seed = seed ^ 0x5EEDull;
  const auto workload = make_parallel_workload(catalog, spec);

  const auto horizon = util::SimTime::epoch() + spec.window * 4;
  if (const auto surge = args.get("--cpu-surge")) {
    if (const auto svc = parse_service(*surge)) {
      deployment.inject_cpu_surge(*svc, util::SimTime::epoch(), horizon,
                                  85.0);
      std::printf("injected CPU surge on %s\n", surge->c_str());
    } else {
      std::fprintf(stderr, "unknown service: %s\n", surge->c_str());
      return 2;
    }
  }
  if (const auto crash = args.get("--crash")) {
    const auto colon = crash->find(':');
    const auto svc = parse_service(crash->substr(0, colon));
    if (colon == std::string::npos || !svc) {
      std::fprintf(stderr, "expected --crash <service>:<daemon>\n");
      return 2;
    }
    deployment.crash_software(*svc, crash->substr(colon + 1),
                              util::SimTime::epoch(), horizon);
    std::printf("crashed %s\n", crash->c_str());
  }

  stack::WorkflowExecutor::Options exec_options;
  exec_options.emit_correlation_ids = args.has_flag("--correlation-ids");
  stack::WorkflowExecutor executor(&deployment, &catalog.apis(),
                                   &catalog.infra(), seed ^ 0xCAFEull,
                                   exec_options);
  const auto records = executor.execute(workload.launches);

  if (!net::write_capture_file(*out, records)) {
    std::fprintf(stderr, "error: could not write %s\n", out->c_str());
    return 1;
  }
  std::printf("captured %zu records (%d tests, %d faults) -> %s\n",
              records.size(), spec.concurrent_tests, spec.faults,
              out->c_str());
  return 0;
}
