// gretel_campaign — run a fault campaign, or re-derive one scenario of it.
//
//   gretel_campaign [--scenarios N] [--seed S] [--fraction F] [--budget N]
//                   [--json PATH]
//       Runs the sweep and prints the per-class coverage table plus the
//       largest failure-mode clusters; --json writes the full summary.
//
//   gretel_campaign --scenario ID [--seed S] [--fraction F]
//       Re-derives scenario ID from the campaign seed (generation is
//       per-scenario deterministic), prints its fault plan, runs it, and
//       dumps the canonical reports behind its fingerprint — the workflow
//       for inspecting one member of a cluster from a BENCH_campaigns run.
//
//   gretel_campaign --recovery N [--recovery-dir D] [--tick-ms T]
//                   [--checkpoint-interval S]
//       Runs N kill-point recovery rounds (crash the durable streaming
//       analyzer at seeded points, restore from disk, assert the
//       durability invariant); exits 1 if any round fails the invariant.
//
// SIGINT/SIGTERM stops a sweep gracefully: the current scenario finishes,
// the partial coverage table prints, and the tool exits 0.
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <string>

#include "bench/harness.h"
#include "campaign/cluster.h"
#include "campaign/orchestrator.h"
#include "campaign/recovery_campaign.h"
#include "gretel/analyzer.h"
#include "tools/cli_common.h"

namespace {

volatile std::sig_atomic_t g_signal = 0;
void on_signal(int sig) { g_signal = sig; }

void print_scenario(const gretel::campaign::ScenarioSpec& spec,
                    const gretel::tempest::TempestCatalog& catalog) {
  using namespace gretel;
  std::printf("scenario %llu  class=%s  seed=%016llx\n",
              static_cast<unsigned long long>(spec.id),
              to_string(spec.fault_class),
              static_cast<unsigned long long>(spec.seed));
  std::printf("  workload: %d concurrent tests over %.0fs\n",
              spec.concurrent_tests, spec.window_s);
  for (const auto& f : spec.faults) {
    std::printf("  fault: op \"%s\" step %zu status %u at +%.1fs\n",
                catalog.operation(f.op_index).name.c_str(), f.fail_step,
                f.status, f.start_offset_s);
  }
  if (spec.has_env()) {
    const char* kind = "?";
    switch (spec.env.kind) {
      case campaign::EnvFault::Kind::CpuSurge: kind = "cpu-surge"; break;
      case campaign::EnvFault::Kind::DiskExhaustion:
        kind = "disk-exhaustion";
        break;
      case campaign::EnvFault::Kind::DaemonCrash: kind = "daemon-crash"; break;
      case campaign::EnvFault::Kind::LinkLatency: kind = "link-latency"; break;
      case campaign::EnvFault::Kind::None: break;
    }
    const std::string service(wire::to_string(spec.env.service));
    std::printf("  env: %s on %s%s%s intensity %.1f\n", kind,
                service.c_str(), spec.env.daemon.empty() ? "" : " daemon ",
                spec.env.daemon.c_str(), spec.env.intensity);
  }
  if (spec.wire.enabled())
    std::printf("  wire chaos: drop %.3f truncate %.3f corrupt %.3f\n",
                spec.wire.drop_rate, spec.wire.truncate_rate,
                spec.wire.corrupt_rate);
  if (spec.monitor.enabled())
    std::printf("  monitor chaos: drop %.3f timeout %.3f\n",
                spec.monitor.probe_drop_rate,
                spec.monitor.probe_timeout_rate);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gretel;
  tools::Args args(argc, argv);

  const auto seed = static_cast<std::uint64_t>(
      args.get_int("--seed", 0xCA59A16EL));
  const double fraction = args.get_double("--fraction", 0.12);

  // The knobs this tool arms, validated as the config rows they map to.
  {
    core::GretelConfig probe;
    probe.campaign_seed = seed;
    probe.campaign_budget_events =
        static_cast<std::size_t>(args.get_int("--budget", 200000));
    probe.stream_tick_ms = args.get_double("--tick-ms", 200.0);
    probe.checkpoint_interval_s =
        args.get_double("--checkpoint-interval", 2.0);
    if (!tools::check_config(probe, "gretel_campaign")) return 2;
  }

  auto env = bench::BenchEnv::make(fraction, 0xC0DE2016ull);

  if (const auto rec = args.get("--recovery")) {
    campaign::RecoveryCampaignConfig rcfg;
    rcfg.seed = seed;
    rcfg.rounds = static_cast<std::size_t>(std::stoull(*rec));
    rcfg.stream_tick_ms = args.get_double("--tick-ms", 200.0);
    rcfg.checkpoint_interval_s =
        args.get_double("--checkpoint-interval", 2.0);
    rcfg.dir = args.get("--recovery-dir").value_or("recovery-campaign");
    campaign::RecoveryCampaign rc(&env.catalog, &env.training, rcfg);
    const auto report = rc.run();
    std::printf("%-6s %-24s %-8s %-10s %-7s %-9s %-9s %s\n", "round",
                "kill-point", "crashed", "recovered", "acked", "journaled",
                "regress", "invariant");
    for (const auto& r : report.rounds) {
      std::printf("%-6llu %-24s %-8s %-10s %-7llu %-9llu %-9.2f %s%s%s\n",
                  static_cast<unsigned long long>(r.round),
                  to_string(r.kill_point), r.crashed ? "yes" : "no",
                  r.recovered ? "yes" : "no",
                  static_cast<unsigned long long>(r.reports_pre_crash),
                  static_cast<unsigned long long>(r.reports_journaled),
                  r.baseline_regressed_s, r.invariant_ok ? "ok" : "FAIL",
                  r.note.empty() ? "" : " — ", r.note.c_str());
    }
    std::printf("\n%zu rounds: %zu crashes, %zu recovered, %zu invariant "
                "failures\n",
                report.rounds.size(), report.crashes, report.recovered,
                report.invariant_failures);
    std::error_code ec;
    std::filesystem::remove_all(rcfg.dir, ec);
    return report.all_ok() ? 0 : 1;
  }

  campaign::CampaignPlan plan;
  plan.seed = seed;
  plan.scenarios = static_cast<std::size_t>(args.get_int("--scenarios", 90));
  plan.budget_events =
      static_cast<std::size_t>(args.get_int("--budget", 200000));
  campaign::ScenarioGenerator generator(&env.catalog, plan);
  campaign::CampaignOrchestrator orchestrator(&env.catalog, &env.training,
                                              plan);

  if (const auto id = args.get("--scenario")) {
    const auto spec = generator.generate_one(std::stoull(*id));
    print_scenario(spec, env.catalog);
    const auto result = orchestrator.run(spec);
    std::printf("\noutcome: %s  fingerprint: %s\n", to_string(result.outcome),
                campaign::fingerprint_hex(result.fingerprint).c_str());
    std::printf("faults: %zu/%zu detected, %zu identified",
                result.faults_detected, result.faults_total,
                result.faults_identified);
    if (result.env_expected)
      std::printf("; env cause %s",
                  result.env_localized ? "localized" : "NOT localized");
    std::printf("\ndiagnoses: %zu over %llu events%s%s\n", result.diagnoses,
                static_cast<unsigned long long>(result.events),
                result.budget_truncated ? " (budget-truncated)" : "",
                result.note.empty() ? "" : (" — " + result.note).c_str());
    return result.outcome == campaign::Outcome::Crashed ? 1 : 0;
  }

  const auto specs = generator.generate();
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::vector<campaign::ScenarioResult> results;
  results.reserve(specs.size());
  for (const auto& spec : specs) {
    if (g_signal) break;
    results.push_back(orchestrator.run(spec));
  }
  const bool interrupted = g_signal != 0;
  if (interrupted)
    std::printf("signal %d: stopping after %zu/%zu scenarios\n\n",
                static_cast<int>(g_signal), results.size(), specs.size());
  const auto summary = campaign::summarize(results);

  std::printf("%-22s %-6s %-10s %-8s %-14s %-8s %-9s\n", "class", "runs",
              "localized", "missed", "misattributed", "crashed", "clusters");
  for (std::size_t c = 0; c < campaign::kFaultClasses; ++c) {
    const auto& cc = summary.per_class[c];
    std::printf("%-22s %-6zu %-10zu %-8zu %-14zu %-8zu %-9zu\n",
                to_string(static_cast<campaign::FaultClass>(c)),
                cc.scenarios, cc.outcomes[0], cc.outcomes[1], cc.outcomes[2],
                cc.outcomes[3], cc.distinct_fingerprints);
  }
  std::printf("\n%zu scenarios, %.1f%% localized, %zu failure modes "
              "(%zu singleton)\n",
              summary.scenarios, 100.0 * summary.localized_fraction(),
              summary.distinct_fingerprints, summary.singleton_fingerprints);
  std::printf("largest clusters:\n");
  const auto top = std::min<std::size_t>(8, summary.clusters.size());
  for (std::size_t i = 0; i < top; ++i) {
    const auto& cl = summary.clusters[i];
    std::printf("  %s  x%zu  e.g. scenario %llu (%s, %s)\n",
                campaign::fingerprint_hex(cl.fingerprint).c_str(), cl.size,
                static_cast<unsigned long long>(cl.example_id),
                to_string(cl.example_class), to_string(cl.example_outcome));
  }

  if (const auto out = args.get("--json")) {
    std::FILE* f = std::fopen(out->c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", out->c_str());
      return 1;
    }
    std::string body;
    campaign::append_summary_json(body, summary);
    std::fprintf(f, "{\n  \"summary\": %s\n}\n", body.c_str());
    std::fclose(f);
    std::printf("wrote %s\n", out->c_str());
  }
  return 0;
}
