// gretel_stream — run the continuous streaming detector against a synthetic
// faulty workload and watch reports arrive with latency stamps.
//
//   gretel_stream [--fraction F] [--tests N] [--faults N] [--window S]
//                 [--seed S] [--tick-ms T] [--ring N] [--shed newest|oldest]
//                 [--shards N] [--quiet]
//                 [--persist DIR] [--resume] [--checkpoint-interval S]
//
// Builds the training environment (fraction of the Tempest catalog),
// executes a parallel workload with injected faults, and replays the
// capture through the StreamAnalyzer in arrival order: advance_to() drives
// the tick grid from record timestamps, offer() admits (or sheds) each
// record, and every emitted report is printed as it happens.  The exit
// summary shows the flow ledger (offered = ingested + shed), the emission-
// delay distribution, and the itemized bounded-state footprint.
//
// --persist arms the durability layer: every report is journaled (fsync'd
// before it prints) and checkpoints are written on the
// --checkpoint-interval cadence.  --resume restores from the newest valid
// checkpoint in DIR first.  SIGINT/SIGTERM is a graceful stop: the stream
// halts at the next record, a final checkpoint is written, the flow
// ledger is dumped, and the tool exits 0 — a later --resume continues
// where the signal landed.
#include <algorithm>
#include <csignal>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "stack/workflow.h"
#include "stream/stream_analyzer.h"
#include "tempest/workload.h"
#include "tools/cli_common.h"
#include "util/seed.h"

namespace {

volatile std::sig_atomic_t g_signal = 0;
void on_signal(int sig) { g_signal = sig; }

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gretel;
  tools::Args args(argc, argv);

  const double fraction = args.get_double("--fraction", 0.12);
  const auto seed =
      static_cast<std::uint64_t>(args.get_int("--seed", 0x57AEA11L));
  const bool quiet = args.has_flag("--quiet");

  auto env = bench::BenchEnv::make(fraction, 0xC0DE2016ull);

  tempest::WorkloadSpec wspec;
  wspec.concurrent_tests = static_cast<int>(args.get_int("--tests", 24));
  wspec.faults = static_cast<int>(args.get_int("--faults", 4));
  wspec.window =
      util::SimDuration::seconds(args.get_int("--window", 45));
  wspec.seed = util::derive_seed(seed, util::SeedStream::Workload);
  const auto workload = tempest::make_parallel_workload(env.catalog, wspec);

  stack::WorkflowExecutor executor(
      &env.deployment, &env.catalog.apis(), &env.catalog.infra(),
      util::derive_seed(seed, util::SeedStream::Executor));
  const auto records = executor.execute(workload.launches);
  if (records.empty()) {
    std::fprintf(stderr, "empty capture\n");
    return 1;
  }
  const double span_s =
      (records.back().ts - records.front().ts).to_seconds();
  const double p_rate =
      span_s > 0 ? static_cast<double>(records.size()) / span_s : 150.0;

  auto opt = env.analyzer_options(std::max(p_rate, 150.0));
  opt.config.num_shards =
      static_cast<std::size_t>(args.get_int("--shards", 1));
  opt.config.stream_tick_ms = args.get_double("--tick-ms", 250.0);
  opt.config.stream_source_ring =
      static_cast<std::size_t>(args.get_int("--ring", 8192));
  if (args.get("--shed").value_or("oldest") == "newest")
    opt.config.stream_shed_policy = core::StreamShedPolicy::DropNewest;
  opt.config.checkpoint_interval_s =
      args.get_double("--checkpoint-interval", 5.0);
  if (!tools::check_config(opt.config, "gretel_stream")) return 2;

  const auto persist_dir = args.get("--persist");
  const bool resume = args.has_flag("--resume");

  std::vector<double> delays;
  auto sink = [&](const stream::StreamReport& r) {
    delays.push_back(r.report_delay_ms);
    if (quiet) return;
    const auto& f = r.diagnosis.fault;
    const auto& api = env.catalog.apis().get(f.offending_api);
    const std::string service(wire::to_string(api.service));
    std::printf(
        "[%9.3fs] tick %4llu  %-11s  %s %s  theta=%.2f  matched=%zu  "
        "delay=%.1fms%s\n",
        r.emitted_at.to_seconds(), static_cast<unsigned long long>(r.tick),
        f.kind == core::FaultKind::Operational ? "operational"
                                               : "performance",
        service.c_str(), api.path.c_str(), f.theta,
        f.matched_fingerprints.size(), r.report_delay_ms,
        f.degraded_confidence ? "  [degraded]" : "");
  };

  std::unique_ptr<stream::StreamAnalyzer> owned;
  if (persist_dir && resume) {
    stream::RecoveryInfo ri;
    owned = stream::StreamAnalyzer::restore(&env.training.db,
                                            &env.catalog.apis(),
                                            &env.deployment, opt,
                                            *persist_dir, sink, &ri);
    if (!owned) {
      std::fprintf(stderr, "cannot open persistence dir %s\n",
                   persist_dir->c_str());
      return 1;
    }
    std::printf(
        "resume: %s (checkpoint %llu @ tick %llu, %zu corrupt skipped, "
        "%zu torn journal records truncated, %zu reports replayed%s)\n",
        ri.recovered ? "recovered" : "cold start",
        static_cast<unsigned long long>(ri.checkpoint_seq),
        static_cast<unsigned long long>(ri.checkpoint_tick),
        ri.corrupt_checkpoints_skipped, ri.journal_records_truncated,
        ri.replayed.size(), ri.db_mismatch ? ", DB MISMATCH" : "");
  } else {
    owned = std::make_unique<stream::StreamAnalyzer>(
        &env.training.db, &env.catalog.apis(), &env.deployment, opt, sink);
    if (persist_dir && !owned->enable_durability(*persist_dir)) {
      std::fprintf(stderr, "cannot open persistence dir %s\n",
                   persist_dir->c_str());
      return 1;
    }
  }
  stream::StreamAnalyzer& streamer = *owned;

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  for (const auto& r : records) {
    if (g_signal) break;
    if (r.ts.nanos() <= streamer.watermark().nanos() && resume) continue;
    streamer.advance_to(r.ts);
    streamer.offer(r);
  }
  if (g_signal) {
    // Graceful stop: the journal already holds every emitted report
    // (fsync-before-acknowledge); flush a final checkpoint so --resume
    // continues from this exact watermark, then fall through to the
    // ledger dump below and exit 0.
    const bool ckpt = streamer.checkpoint_now();
    std::printf("\nsignal %d: stopping at watermark %.3fs%s\n",
                static_cast<int>(g_signal),
                streamer.watermark().to_seconds(),
                streamer.durable()
                    ? (ckpt ? ", final checkpoint written"
                            : ", FINAL CHECKPOINT FAILED")
                    : "");
  } else {
    streamer.finish();
  }

  const auto& c = streamer.counters();
  std::sort(delays.begin(), delays.end());
  std::printf(
      "\n%zu records over %.1fs (%.0f rec/s), %llu ticks @ %.0fms\n",
      records.size(), span_s, p_rate,
      static_cast<unsigned long long>(c.ticks), opt.config.stream_tick_ms);
  std::printf(
      "flow: offered=%llu ingested=%llu shed=%llu (episodes=%llu)\n",
      static_cast<unsigned long long>(c.offered),
      static_cast<unsigned long long>(c.ingested),
      static_cast<unsigned long long>(c.shed),
      static_cast<unsigned long long>(c.shed_episodes));
  std::printf(
      "reports: %llu emitted (%llu retained)  delay p50=%.1fms p95=%.1fms "
      "p99=%.1fms\n",
      static_cast<unsigned long long>(c.reports),
      static_cast<unsigned long long>(streamer.recent_reports().size()),
      percentile(delays, 0.50), percentile(delays, 0.95),
      percentile(delays, 0.99));
  auto fp = streamer.footprint();
  std::printf(
      "state: ring=%zu rec (%zu B)  window=%zu slots  pending=%zu  "
      "series=%zu pts  reports=%zu  ~%zu B (peak ~%zu B)\n",
      fp.source_ring_records, fp.source_ring_bytes, fp.window_capacity,
      fp.pending_requests, fp.series_points, fp.reports_retained,
      fp.approx_bytes(), streamer.peak_state_bytes());
  const auto health = streamer.health();
  std::printf(
      "health: losses=%llu orphans=%llu evicted=%llu trimmed=%llu "
      "stalled_shards=%llu\n",
      static_cast<unsigned long long>(health.losses_recorded),
      static_cast<unsigned long long>(health.orphans_reaped),
      static_cast<unsigned long long>(health.inflight_evicted),
      static_cast<unsigned long long>(health.series_trimmed),
      static_cast<unsigned long long>(health.stalled_shards));
  return 0;
}
