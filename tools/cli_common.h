// Minimal argument parsing shared by the gretel_* command-line tools.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

namespace gretel::tools {

class Args {
 public:
  Args(int argc, char** argv) : argc_(argc), argv_(argv) {}

  // "--name value" style option; nullopt when absent.
  std::optional<std::string> get(const char* name) const {
    for (int i = 1; i + 1 < argc_; ++i) {
      if (std::strcmp(argv_[i], name) == 0) return std::string(argv_[i + 1]);
    }
    return std::nullopt;
  }

  bool has_flag(const char* name) const {
    for (int i = 1; i < argc_; ++i) {
      if (std::strcmp(argv_[i], name) == 0) return true;
    }
    return false;
  }

  double get_double(const char* name, double fallback) const {
    const auto v = get(name);
    return v ? std::atof(v->c_str()) : fallback;
  }

  long get_int(const char* name, long fallback) const {
    const auto v = get(name);
    return v ? std::atol(v->c_str()) : fallback;
  }

 private:
  int argc_;
  char** argv_;
};

}  // namespace gretel::tools
