// Minimal argument parsing shared by the gretel_* command-line tools.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "gretel/config.h"

namespace gretel::tools {

// Itemized config validation for the tool CLIs: a nonsensical knob (zero
// tick, negative cap, sub-tick checkpoint cadence, ...) prints every
// violated constraint and refuses to run, instead of arming the pipeline
// with values the math cannot mean anything for.
inline bool check_config(const core::GretelConfig& config, const char* tool) {
  const auto errors = config.validate();
  if (errors.empty()) return true;
  std::fprintf(stderr, "%s: invalid configuration (%zu problems):\n", tool,
               errors.size());
  for (const auto& e : errors) std::fprintf(stderr, "  - %s\n", e.c_str());
  return false;
}

class Args {
 public:
  Args(int argc, char** argv) : argc_(argc), argv_(argv) {}

  // "--name value" style option; nullopt when absent.
  std::optional<std::string> get(const char* name) const {
    for (int i = 1; i + 1 < argc_; ++i) {
      if (std::strcmp(argv_[i], name) == 0) return std::string(argv_[i + 1]);
    }
    return std::nullopt;
  }

  bool has_flag(const char* name) const {
    for (int i = 1; i < argc_; ++i) {
      if (std::strcmp(argv_[i], name) == 0) return true;
    }
    return false;
  }

  double get_double(const char* name, double fallback) const {
    const auto v = get(name);
    return v ? std::atof(v->c_str()) : fallback;
  }

  long get_int(const char* name, long fallback) const {
    const auto v = get(name);
    return v ? std::atol(v->c_str()) : fallback;
  }

 private:
  int argc_;
  char** argv_;
};

}  // namespace gretel::tools
