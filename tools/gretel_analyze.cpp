// gretel_analyze — runs the GRETEL analyzer over a recorded capture using a
// trained fingerprint database; the production-side half of the pipeline.
//
//   gretel_analyze --db fingerprints.db --capture traffic.cap
//                  [--seed N] [--fraction F]   (must match gretel_train's)
//                  [--json]                    (machine-readable output)
//
// Note: the catalog is rebuilt from (--seed, --fraction) and validated
// against the database's embedded catalog hash, so mismatched artifacts
// fail loudly instead of mismatching symbols.
#include <cstdio>

#include "gretel/analyzer.h"
#include "gretel/db_io.h"
#include "gretel/json_export.h"
#include "monitor/metrics.h"
#include "net/capture_file.h"
#include "tempest/catalog.h"
#include "tools/cli_common.h"

int main(int argc, char** argv) {
  using namespace gretel;
  const tools::Args args(argc, argv);
  const auto db_path = args.get("--db");
  const auto cap_path = args.get("--capture");
  if (!db_path || !cap_path || args.has_flag("--help")) {
    std::fprintf(stderr,
                 "usage: gretel_analyze --db <file> --capture <file> "
                 "[--seed N] [--fraction F] [--json]\n");
    return db_path && cap_path ? 0 : 2;
  }

  const auto seed =
      static_cast<std::uint64_t>(args.get_int("--seed", 0xC0DE2016L));
  const auto catalog =
      tempest::TempestCatalog::build(seed, args.get_double("--fraction", 1.0));
  auto deployment = stack::Deployment::standard(3);

  const auto db = core::load_fingerprint_db(*db_path, catalog.apis());
  if (!db) {
    std::fprintf(stderr,
                 "error: %s unreadable or trained on a different catalog "
                 "(check --seed/--fraction)\n",
                 db_path->c_str());
    return 1;
  }
  const auto records = net::read_capture_file(*cap_path);
  if (!records || records->empty()) {
    std::fprintf(stderr, "error: %s unreadable or empty\n",
                 cap_path->c_str());
    return 1;
  }

  const double span =
      (records->back().ts - records->front().ts).to_seconds();
  core::Analyzer::Options options;
  options.config.fp_max = db->max_fingerprint_size();
  options.config.p_rate =
      span > 0 ? static_cast<double>(records->size()) / span : 150.0;
  if (!tools::check_config(options.config, "gretel_analyze")) return 2;

  core::Analyzer analyzer(&*db, &catalog.apis(), &deployment, options);
  monitor::ResourceMonitor monitor(&deployment, util::SimDuration::seconds(1),
                                   seed);
  monitor.sample_range(records->front().ts,
                       records->back().ts + util::SimDuration::seconds(3),
                       analyzer.metrics());

  for (const auto& r : *records) analyzer.on_wire(r);
  analyzer.finish();

  if (args.has_flag("--json")) {
    std::printf("%s\n",
                core::to_json(analyzer.diagnoses(), catalog.apis(), *db)
                    .c_str());
    return 0;
  }

  const auto& stats = analyzer.detector_stats();
  std::printf("processed %llu events (%llu REST errors, %llu RPC errors)\n",
              static_cast<unsigned long long>(stats.events),
              static_cast<unsigned long long>(stats.rest_errors),
              static_cast<unsigned long long>(stats.rpc_errors));
  for (const auto& d : analyzer.diagnoses()) {
    std::printf("\n[%s] fault on %s (theta %.4f)\n",
                d.fault.kind == core::FaultKind::Operational
                    ? "operational"
                    : "performance",
                catalog.apis().get(d.fault.offending_api)
                    .display_name().c_str(),
                d.fault.theta);
    for (auto idx : d.fault.matched_fingerprints) {
      std::printf("  operation: %s\n", db->get(idx).name.c_str());
    }
    for (const auto& c : d.root_cause.causes) {
      std::printf("  root cause @ node %u: %s\n", c.node.value(),
                  c.detail.c_str());
    }
  }
  if (analyzer.diagnoses().empty()) std::printf("no faults detected\n");
  return 0;
}
